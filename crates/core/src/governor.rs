//! CPM-configuration governors (Sec. VII-C, Fig. 13).

use std::fmt;

use atm_units::CoreId;
use serde::{Deserialize, Serialize};

use crate::charact::RealisticResult;
use crate::stress::StressTestResult;

/// How the operator sets the cores' CPM configurations (the first step of
/// the paper's Fig. 13 management scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Governor {
    /// Use the per-core stress-test (*thread-worst*) limits: good
    /// reliability through worst-case testing, high performance. The
    /// paper's evaluation setting.
    #[default]
    Default,
    /// Use each application's own most aggressive safe configuration on
    /// each core, from profiling (higher performance, requires per-app
    /// profiles; the paper sketches this and defers exploration).
    Aggressive,
    /// Schedule critical work only onto *robust* cores (those needing the
    /// least rollback across all profiled applications) and keep an extra
    /// safety step everywhere: best for unknown applications or when
    /// correctness is paramount.
    Conservative,
}

impl Governor {
    /// Extra CPM rollback this governor applies on top of the stress-test
    /// limits.
    #[must_use]
    pub fn extra_rollback(&self) -> usize {
        match self {
            Governor::Default | Governor::Aggressive => 0,
            Governor::Conservative => 1,
        }
    }

    /// The reduction map this governor deploys for running `app` as the
    /// critical workload.
    ///
    /// * `Default` — the stress-test map.
    /// * `Aggressive` — the stress-test map, except the app's own profiled
    ///   limit wherever a profile exists and is more aggressive.
    /// * `Conservative` — the stress-test map rolled back one extra step.
    #[must_use]
    pub fn reduction_map(
        &self,
        stress: &StressTestResult,
        realistic: Option<&RealisticResult>,
        app: Option<&str>,
    ) -> [usize; 16] {
        let mut map = stress.deployed_map();
        match self {
            Governor::Default => {}
            Governor::Conservative => {
                for v in &mut map {
                    *v = v.saturating_sub(1);
                }
            }
            Governor::Aggressive => {
                if let (Some(realistic), Some(app)) = (realistic, app) {
                    for core in CoreId::all() {
                        if let Some(profile) = realistic.profile(app, core) {
                            let i = core.flat_index();
                            map[i] = map[i].max(profile.app_limit());
                        }
                    }
                }
            }
        }
        map
    }

    /// Whether this governor restricts critical placement to robust cores.
    #[must_use]
    pub fn robust_cores_only(&self) -> bool {
        matches!(self, Governor::Conservative)
    }
}

impl fmt::Display for Governor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Governor::Default => "default",
            Governor::Aggressive => "aggressive",
            Governor::Conservative => "conservative",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_units::MegaHz;

    fn stress() -> StressTestResult {
        StressTestResult {
            limits: [6, 6, 3, 6, 6, 5, 5, 2, 3, 3, 5, 3, 3, 2, 6, 2],
            rollback: 0,
            idle_frequencies: [MegaHz::new(4900.0); 16],
        }
    }

    #[test]
    fn default_uses_stress_map() {
        let s = stress();
        assert_eq!(
            Governor::Default.reduction_map(&s, None, None),
            s.deployed_map()
        );
    }

    #[test]
    fn conservative_rolls_back_one() {
        let s = stress();
        let map = Governor::Conservative.reduction_map(&s, None, None);
        for (i, v) in map.iter().enumerate() {
            assert_eq!(*v, s.limits[i].saturating_sub(1));
        }
        assert!(Governor::Conservative.robust_cores_only());
        assert_eq!(Governor::Conservative.extra_rollback(), 1);
    }

    #[test]
    fn aggressive_without_profiles_equals_default() {
        let s = stress();
        assert_eq!(
            Governor::Aggressive.reduction_map(&s, None, Some("gcc")),
            s.deployed_map()
        );
    }

    #[test]
    fn aggressive_uses_app_profiles_where_more_aggressive() {
        use crate::charact::{AppCoreProfile, LimitDistribution, RealisticResult};
        use atm_units::CoreId;

        let s = stress();
        // Synthetic profiles: "benign" has limit 9 everywhere (above the
        // stress map), "noisy" has limit 1 everywhere (below it).
        let mk = |app: &str, limit: usize| -> Vec<AppCoreProfile> {
            CoreId::all()
                .map(|core| AppCoreProfile {
                    app: app.to_owned(),
                    core,
                    ubench_limit: 10,
                    distribution: LimitDistribution::new(vec![limit]),
                })
                .collect()
        };
        let mut profiles = mk("benign", 9);
        profiles.extend(mk("noisy", 1));
        let realistic = RealisticResult::from_profiles(profiles);

        let benign_map = Governor::Aggressive.reduction_map(&s, Some(&realistic), Some("benign"));
        for v in benign_map {
            assert_eq!(v, 9, "benign app should get its own limit");
        }
        // A noisy app's profile is *below* the stress map: the governor
        // keeps the (already validated) stress map instead.
        let noisy_map = Governor::Aggressive.reduction_map(&s, Some(&realistic), Some("noisy"));
        assert_eq!(noisy_map, s.deployed_map());
        // Unprofiled app: falls back to the stress map.
        let unknown_map = Governor::Aggressive.reduction_map(&s, Some(&realistic), Some("mystery"));
        assert_eq!(unknown_map, s.deployed_map());
    }

    #[test]
    fn display_names() {
        assert_eq!(Governor::Default.to_string(), "default");
        assert_eq!(Governor::Aggressive.to_string(), "aggressive");
        assert_eq!(Governor::Conservative.to_string(), "conservative");
    }
}
