//! Fine-tuning the Active Timing Margin control loop — the paper's
//! contribution, implemented against the [`atm_chip`] substrate exactly as
//! it would be against real hardware.
//!
//! The crate provides, in the order the paper develops them:
//!
//! * [`FineTuner`] — programming per-core CPM delay reductions and sweeping
//!   frequency against reduction (Sec. III-A, Fig. 5);
//! * [`charact`] — the idle → uBench → realistic characterization
//!   methodology (Secs. IV–VI, Fig. 6) producing [`LimitTable`] (Table I)
//!   and the per-⟨app, core⟩ rollback profile (Fig. 10);
//! * [`stress`] — the test-time stress-test deployment procedure
//!   (Sec. VII-A, Fig. 11);
//! * [`predictor`] — the per-core frequency predictor (Eq. 1, Fig. 12a)
//!   and per-app performance predictor (Fig. 12b);
//! * [`Governor`], [`Scheduler`], [`AtmManager`] — deploying and managing
//!   a fine-tuned system for predictable performance (Sec. VII, Fig. 13),
//!   including critical-to-fastest-core placement and background
//!   throttling to a chip power budget (Fig. 14).
//!
//! # Examples
//!
//! Fine-tune one core and watch its frequency climb:
//!
//! ```
//! use atm_chip::{ChipConfig, MarginMode, System};
//! use atm_core::FineTuner;
//! use atm_units::CoreId;
//!
//! let mut sys = System::new(ChipConfig::default());
//! let core = CoreId::new(0, 0);
//! sys.set_mode(core, MarginMode::Atm);
//! let sweep = FineTuner::new(&mut sys).frequency_sweep(core, 4);
//! assert!(sweep.last().unwrap().1 > sweep.first().unwrap().1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod charact;
pub mod engine;
mod finetune;
mod governor;
mod limits;
pub mod manager;
pub mod predictor;
mod qos;
mod schedule;
mod scheduler;
pub mod stress;
mod supervisor;
mod throttle;

pub use charact::{CharactConfig, CharactConfigBuilder, LimitDistribution};
pub use engine::{CharactEngine, EngineResult, SweepCache, TrialKey};
pub use finetune::FineTuner;
pub use governor::Governor;
pub use limits::LimitTable;
pub use manager::{AtmManager, ManagedOutcome, ManagerCheckpoint, ServePosture, Strategy};
pub use predictor::{FreqPredictor, LinearFit, PerfPredictor};
pub use qos::QosTarget;
pub use schedule::{Schedule, ScheduleEntry};
pub use scheduler::{Placement, Scheduler};
pub use stress::{stress_test_deploy, StressTestResult};
pub use supervisor::{MarginSupervisor, SupervisorAction, SupervisorConfig, SupervisorSummary};
pub use throttle::{throttle_to_budget, ThrottlePlan, ThrottleSetting};
