//! Critical-application placement (Sec. VII-C).

use atm_chip::{MarginMode, System};
use atm_units::{CoreId, MegaHz, ProcId};
use serde::{Deserialize, Serialize};

use crate::throttle::ThrottlePlan;

/// Where a schedule put things.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The core chosen for the critical application.
    pub critical_core: CoreId,
    /// The sibling cores carrying background work.
    pub background_cores: Vec<CoreId>,
    /// The throttle plan applied to the background cores.
    pub plan: Option<ThrottlePlan>,
}

/// Ranks cores and produces placements over a deployed (fine-tuned)
/// system.
///
/// # Examples
///
/// ```
/// use atm_chip::{ChipConfig, System};
/// use atm_core::Scheduler;
/// use atm_units::ProcId;
///
/// let mut sys = System::new(ChipConfig::default());
/// let ranked = Scheduler::new(&mut sys).rank_cores(ProcId::new(0), false);
/// assert_eq!(ranked.len(), 8);
/// ```
#[derive(Debug)]
pub struct Scheduler<'a> {
    system: &'a mut System,
}

impl<'a> Scheduler<'a> {
    /// Opens a scheduling session.
    #[must_use]
    pub fn new(system: &'a mut System) -> Self {
        Scheduler { system }
    }

    /// Ranks the socket's cores by their deployed-configuration ATM idle
    /// frequency, fastest first. With `robust_only`, cores in the bottom
    /// half of CPM-placement robustness are excluded (the conservative
    /// governor's rule), unless that would exclude everything.
    ///
    /// Modes and workloads are restored to static idle afterwards.
    #[must_use]
    pub fn rank_cores(&mut self, proc: ProcId, robust_only: bool) -> Vec<(CoreId, MegaHz)> {
        self.rank_cores_excluding(proc, robust_only, &[])
    }

    /// [`Scheduler::rank_cores`] with a hard exclusion list: excluded cores
    /// (quarantined or safe-moded by the margin supervisor) are never
    /// probed — their margin mode is not touched — and never ranked.
    ///
    /// # Panics
    ///
    /// Panics if the exclusion list covers the entire socket.
    #[must_use]
    pub fn rank_cores_excluding(
        &mut self,
        proc: ProcId,
        robust_only: bool,
        excluded: &[CoreId],
    ) -> Vec<(CoreId, MegaHz)> {
        let eligible: Vec<CoreId> = proc.cores().filter(|c| !excluded.contains(c)).collect();
        assert!(
            !eligible.is_empty(),
            "exclusion list covers every core of {proc}"
        );
        self.system.idle_all();
        for core in CoreId::all().filter(|c| !excluded.contains(c)) {
            self.system.set_mode(core, MarginMode::Static);
        }
        for &core in &eligible {
            self.system.set_mode(core, MarginMode::Atm);
        }
        let report = self.system.settle();
        for core in CoreId::all().filter(|c| !excluded.contains(c)) {
            self.system.set_mode(core, MarginMode::Static);
        }

        let mut ranked: Vec<(CoreId, MegaHz)> = eligible
            .iter()
            .map(|&c| (c, report.core(c).mean_freq))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("frequencies are finite"));

        if robust_only {
            let mut robustness: Vec<(CoreId, f64)> = proc
                .cores()
                .map(|c| (c, self.system.core(c).silicon().robustness()))
                .collect();
            robustness.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            let keep: Vec<CoreId> = robustness
                .iter()
                .take(robustness.len() / 2)
                .map(|(c, _)| *c)
                .collect();
            let filtered: Vec<(CoreId, MegaHz)> = ranked
                .iter()
                .copied()
                .filter(|(c, _)| keep.contains(c))
                .collect();
            if !filtered.is_empty() {
                return filtered;
            }
        }
        ranked
    }

    /// The fastest core of `proc` at the deployed configuration.
    #[must_use]
    pub fn fastest_core(&mut self, proc: ProcId, robust_only: bool) -> CoreId {
        self.rank_cores(proc, robust_only)[0].0
    }

    /// The slowest core of `proc` at the deployed configuration (what an
    /// unmanaged scheduler might carelessly hand a critical job).
    #[must_use]
    pub fn slowest_core(&mut self, proc: ProcId) -> CoreId {
        self.rank_cores(proc, false)
            .last()
            .expect("socket has cores")
            .0
    }

    /// Produces a placement on `proc`: the critical application on the
    /// fastest (optionally robust-only) core, the remaining cores listed
    /// as background slots. The throttle plan is left for the manager to
    /// fill once a power budget is known.
    #[must_use]
    pub fn place_critical(&mut self, proc: ProcId, robust_only: bool) -> Placement {
        self.place_critical_excluding(proc, robust_only, &[])
    }

    /// [`Scheduler::place_critical`] with a hard exclusion list: excluded
    /// cores (quarantined or safe-moded) are neither candidates for the
    /// critical slot nor listed as background slots.
    ///
    /// # Panics
    ///
    /// Panics if the exclusion list covers the entire socket.
    #[must_use]
    pub fn place_critical_excluding(
        &mut self,
        proc: ProcId,
        robust_only: bool,
        excluded: &[CoreId],
    ) -> Placement {
        let critical_core = self.rank_cores_excluding(proc, robust_only, excluded)[0].0;
        Placement {
            critical_core,
            background_cores: proc
                .cores()
                .filter(|c| *c != critical_core && !excluded.contains(c))
                .collect(),
            plan: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::ChipConfig;
    use atm_core_test_util::deploy_quick;

    // A tiny internal helper namespace so tests can deploy a fine-tuned
    // configuration without repeating the stress-test boilerplate.
    mod atm_core_test_util {
        use super::*;
        use crate::charact::CharactConfig;
        use crate::stress::stress_test_deploy;

        pub fn deploy_quick(sys: &mut System) {
            let _ = stress_test_deploy(sys, 0, &CharactConfig::quick());
        }
    }

    #[test]
    fn ranking_is_descending_and_complete() {
        let mut sys = System::new(ChipConfig::default());
        deploy_quick(&mut sys);
        let ranked = Scheduler::new(&mut sys).rank_cores(ProcId::new(0), false);
        assert_eq!(ranked.len(), 8);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn fastest_not_slowest_on_finetuned_chip() {
        let mut sys = System::new(ChipConfig::default());
        deploy_quick(&mut sys);
        let mut sched = Scheduler::new(&mut sys);
        let fast = sched.fastest_core(ProcId::new(0), false);
        let slow = sched.slowest_core(ProcId::new(0));
        assert_ne!(fast, slow);
    }

    #[test]
    fn robust_only_filters_to_robust_half() {
        let mut sys = System::new(ChipConfig::default());
        deploy_quick(&mut sys);
        let robust = Scheduler::new(&mut sys).rank_cores(ProcId::new(0), true);
        assert!(robust.len() <= 4);
        assert!(!robust.is_empty());
    }

    #[test]
    fn placement_covers_the_socket() {
        let mut sys = System::new(ChipConfig::default());
        deploy_quick(&mut sys);
        let placement = Scheduler::new(&mut sys).place_critical(ProcId::new(0), false);
        assert_eq!(placement.background_cores.len(), 7);
        assert!(!placement
            .background_cores
            .contains(&placement.critical_core));
        assert!(placement.plan.is_none());
        let fastest = Scheduler::new(&mut sys).fastest_core(ProcId::new(0), false);
        assert_eq!(placement.critical_core, fastest);
    }

    #[test]
    fn ranking_restores_static_idle() {
        let mut sys = System::new(ChipConfig::default());
        let _ = Scheduler::new(&mut sys).rank_cores(ProcId::new(1), false);
        for core in ProcId::new(1).cores() {
            assert_eq!(sys.core(core).mode(), MarginMode::Static);
            assert_eq!(sys.core(core).workload().name(), "idle");
        }
    }
}
