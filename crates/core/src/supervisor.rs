//! The margin-safety supervisor: a watchdog over the fine-tuned fleet.
//!
//! Fine-tuning trades guardband for frequency; the paper's field story
//! depends on *reacting* when that trade goes wrong. The
//! [`MarginSupervisor`] is the reaction policy: it watches each core's
//! health signals across observation windows — timing failures, droop-alarm
//! storms, CPM-readout staleness — and escalates through a deterministic
//! ladder:
//!
//! 1. **Strike → rollback + probation.** A strike rolls the core's CPM
//!    reduction back one step and puts it on probation: the fine-tuned
//!    setting is re-probed only after `reprobe_after × 2^strikes` clean
//!    windows (exponential backoff, capped), so a marginal core earns its
//!    aggressive setting back slowly.
//! 2. **Three strikes → safe mode.** The core provably reverts to the
//!    static-margin baseline: margin mode [`MarginMode::Static`], CPM
//!    reduction zero — byte-for-byte the configuration of a core that was
//!    never fine-tuned (the safe-mode guarantee, asserted by the
//!    golden-comparison test in `tests/fault_campaigns.rs`).
//! 3. **Five strikes → quarantine.** A flapping core — one that keeps
//!    failing even in safe mode — is power-gated and permanently excluded
//!    from placement. Quarantine is terminal for the supervisor's
//!    lifetime.
//!
//! The supervisor only *decides*; the [`AtmManager`](crate::AtmManager)
//! applies its [`SupervisorAction`]s (see
//! [`AtmManager::apply_supervisor_actions`](crate::AtmManager::apply_supervisor_actions)).
//! All state is integer-valued and window-indexed, so supervised runs are
//! bit-deterministic.

use atm_chip::{ChipEvent, MarginMode, System};
use atm_units::{CoreId, CORES_PER_PROC, NUM_PROCS};
use serde::{Deserialize, Serialize};

/// Total cores watched.
const NUM_CORES: usize = NUM_PROCS * CORES_PER_PROC;

/// Health lost per strike window.
const HEALTH_PER_STRIKE: u32 = 30;

/// Health regained per clean window.
const HEALTH_PER_CLEAN: u32 = 10;

/// The supervisor's thresholds. All integer-valued; the defaults are the
/// ones the repo's fault-campaign tests are calibrated against.
///
/// The thresholds parameterize a per-core state machine:
///
/// ```text
///            strike                    strike (×safe_mode_strikes)
///   Fine ───────────▶ Probation ─── ⋯ ───▶ SafeMode ─── ⋯ ───▶ Quarantined
///    ▲                    │                         (×quarantine_strikes)
///    └────────────────────┘
///      reprobe_after << min(strikes, backoff_cap) clean windows
/// ```
///
/// A *strike* is any window with a timing failure, `alarm_trip` droop
/// alarms, or `stale_trip` CPM-stale ticks. Each strike rolls the core
/// back `rollback_steps` and opens a probation whose length doubles per
/// accumulated strike (capped by `backoff_cap`); serving it re-probes the
/// fine-tuned setting. `safe_mode_strikes` total strikes revert the core
/// to the static baseline; `quarantine_strikes` power-gate it for good.
///
/// # Examples
///
/// ```
/// use atm_core::SupervisorConfig;
///
/// // A stricter ladder than the default: one droop alarm per window
/// // already counts as a strike, and safe mode comes one strike sooner.
/// let cfg = SupervisorConfig {
///     alarm_trip: 1,
///     safe_mode_strikes: 2,
///     quarantine_strikes: 4,
///     ..SupervisorConfig::default()
/// };
/// assert!(cfg.safe_mode_strikes < cfg.quarantine_strikes);
/// // The first probation takes reprobe_after << 1 clean windows.
/// assert_eq!(cfg.reprobe_after << 1, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Clean windows required before the first re-probe (doubled per
    /// accumulated strike, capped by `backoff_cap`).
    pub reprobe_after: u32,
    /// Maximum backoff exponent: probation never requires more than
    /// `reprobe_after << backoff_cap` clean windows.
    pub backoff_cap: u32,
    /// Droop alarms within one window that count as a strike.
    pub alarm_trip: usize,
    /// CPM-stale ticks accumulated within one window that count as a
    /// strike (sensor-dropout staleness).
    pub stale_trip: u64,
    /// Strikes at which a core is reverted to the static-margin baseline.
    pub safe_mode_strikes: u32,
    /// Strikes at which a core is quarantined (power-gated, excluded from
    /// placement). Must be above `safe_mode_strikes`.
    pub quarantine_strikes: u32,
    /// CPM steps removed per rollback and restored per re-probe.
    pub rollback_steps: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            reprobe_after: 2,
            backoff_cap: 4,
            alarm_trip: 3,
            stale_trip: 64,
            safe_mode_strikes: 3,
            quarantine_strikes: 5,
            rollback_steps: 1,
        }
    }
}

/// One decision the supervisor hands to the manager at a window boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SupervisorAction {
    /// Roll the core's CPM reduction back by `steps` (field response to a
    /// strike).
    Rollback {
        /// The struck core.
        core: CoreId,
        /// Delay steps to restore.
        steps: usize,
    },
    /// Probation served: raise the core's reduction back toward the
    /// fine-tuned target by `steps`.
    Reprobe {
        /// The recovered core.
        core: CoreId,
        /// Delay steps to remove again.
        steps: usize,
    },
    /// Revert the core to the static-margin baseline (mode
    /// [`MarginMode::Static`], reduction zero).
    SafeMode {
        /// The failing core.
        core: CoreId,
    },
    /// Power-gate the core and exclude it from placement permanently.
    Quarantine {
        /// The flapping core.
        core: CoreId,
    },
}

impl SupervisorAction {
    /// The core this action targets.
    #[must_use]
    pub fn core(&self) -> CoreId {
        match *self {
            SupervisorAction::Rollback { core, .. }
            | SupervisorAction::Reprobe { core, .. }
            | SupervisorAction::SafeMode { core }
            | SupervisorAction::Quarantine { core } => core,
        }
    }
}

/// A whole-chip digest of the supervisor's state — the health surface a
/// fleet-level placement policy routes traffic by (fast healthy chips
/// attract critical work, quarantine-heavy chips drain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisorSummary {
    /// Cores currently quarantined (terminal).
    pub quarantined: u32,
    /// Cores currently held at the static-margin baseline.
    pub safe_mode: u32,
    /// Cores serving a probation (rolled back, awaiting re-probe).
    pub probation: u32,
    /// The least healthy core's score (0–100).
    pub min_health: u32,
}

/// Where a watched core sits on the escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Phase {
    /// Healthy, running its fine-tuned setting.
    Fine,
    /// Rolled back; serving clean windows toward a re-probe.
    Probation {
        /// Clean windows served so far.
        clean: u32,
        /// Clean windows required.
        need: u32,
    },
    /// Reverted to the static-margin baseline.
    SafeMode,
    /// Power-gated and excluded from placement (terminal).
    Quarantined,
}

/// Per-core watchdog state.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct CoreWatch {
    phase: Phase,
    strikes: u32,
    health: u32,
    /// The core's lifetime `cpm_stale_ticks` at the last window boundary.
    last_stale: u64,
}

impl CoreWatch {
    fn new() -> Self {
        CoreWatch {
            phase: Phase::Fine,
            strikes: 0,
            health: 100,
            last_stale: 0,
        }
    }
}

/// The margin-safety supervisor (see the module docs for the escalation
/// ladder).
///
/// # Examples
///
/// ```
/// use atm_chip::{ChipConfig, System};
/// use atm_core::{MarginSupervisor, SupervisorConfig};
/// use atm_units::CoreId;
///
/// let sys = System::new(ChipConfig::default());
/// let mut sup = MarginSupervisor::new(SupervisorConfig::default());
/// sup.attach(&sys);
/// let actions = sup.observe_window(&sys, &[]);
/// assert!(actions.is_empty(), "a clean window needs no intervention");
/// assert_eq!(sup.health(CoreId::new(0, 0)), 100);
/// ```
#[derive(Debug, Clone)]
pub struct MarginSupervisor {
    config: SupervisorConfig,
    watch: [CoreWatch; NUM_CORES],
}

impl MarginSupervisor {
    /// Creates a supervisor with every core healthy.
    ///
    /// # Panics
    ///
    /// Panics if the config's quarantine threshold is not above its
    /// safe-mode threshold, or either is zero.
    #[must_use]
    pub fn new(config: SupervisorConfig) -> Self {
        assert!(
            config.safe_mode_strikes > 0 && config.quarantine_strikes > config.safe_mode_strikes,
            "strike ladder must be 0 < safe_mode_strikes < quarantine_strikes"
        );
        MarginSupervisor {
            config,
            watch: [CoreWatch::new(); NUM_CORES],
        }
    }

    /// The configured thresholds.
    #[must_use]
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Baselines the staleness counters against `sys` and resets every
    /// core to healthy. Call once after taking over a system, before the
    /// first window.
    pub fn attach(&mut self, sys: &System) {
        for (flat, w) in self.watch.iter_mut().enumerate() {
            *w = CoreWatch::new();
            w.last_stale = sys.core(CoreId::from_flat_index(flat)).cpm_stale_ticks();
        }
    }

    /// Closes one observation window: digests the window's chip events and
    /// the cores' staleness counters into per-core strikes, advances each
    /// core's ladder phase, and returns the actions the manager must apply
    /// (in core order — the output is deterministic given the inputs).
    pub fn observe_window(&mut self, sys: &System, events: &[ChipEvent]) -> Vec<SupervisorAction> {
        let mut failed = [false; NUM_CORES];
        let mut alarms = [0usize; NUM_CORES];
        for e in events {
            match e {
                ChipEvent::Failure(f) => failed[f.core.flat_index()] = true,
                ChipEvent::Droop(a) => alarms[a.core.flat_index()] += 1,
            }
        }

        let mut actions = Vec::new();
        for flat in 0..NUM_CORES {
            let core = CoreId::from_flat_index(flat);
            let stale_now = sys.core(core).cpm_stale_ticks();
            let stale_grew = stale_now.saturating_sub(self.watch[flat].last_stale);
            self.watch[flat].last_stale = stale_now;

            if self.watch[flat].phase == Phase::Quarantined {
                continue; // Terminal: no strikes, no recovery.
            }
            let strike = failed[flat]
                || alarms[flat] >= self.config.alarm_trip
                || stale_grew >= self.config.stale_trip;
            if strike {
                self.strike(flat, core, &mut actions);
            } else {
                self.clean(flat, core, &mut actions);
            }
        }
        actions
    }

    fn strike(&mut self, flat: usize, core: CoreId, actions: &mut Vec<SupervisorAction>) {
        let w = &mut self.watch[flat];
        w.strikes += 1;
        w.health = w.health.saturating_sub(HEALTH_PER_STRIKE);
        if w.strikes >= self.config.quarantine_strikes {
            w.phase = Phase::Quarantined;
            actions.push(SupervisorAction::Quarantine { core });
        } else if w.strikes >= self.config.safe_mode_strikes {
            if w.phase != Phase::SafeMode {
                w.phase = Phase::SafeMode;
                actions.push(SupervisorAction::SafeMode { core });
            }
        } else {
            // Exponential backoff: each accumulated strike doubles the
            // clean-window requirement, capped so probation stays bounded.
            let exponent = w.strikes.min(self.config.backoff_cap);
            let need = self.config.reprobe_after << exponent;
            w.phase = Phase::Probation { clean: 0, need };
            actions.push(SupervisorAction::Rollback {
                core,
                steps: self.config.rollback_steps,
            });
        }
    }

    fn clean(&mut self, flat: usize, core: CoreId, actions: &mut Vec<SupervisorAction>) {
        let w = &mut self.watch[flat];
        w.health = (w.health + HEALTH_PER_CLEAN).min(100);
        if let Phase::Probation { clean, need } = w.phase {
            let clean = clean + 1;
            if clean >= need {
                w.phase = Phase::Fine;
                actions.push(SupervisorAction::Reprobe {
                    core,
                    steps: self.config.rollback_steps,
                });
            } else {
                w.phase = Phase::Probation { clean, need };
            }
        }
    }

    /// The core's health score, 0 (persistent trouble) to 100 (clean).
    #[must_use]
    pub fn health(&self, core: CoreId) -> u32 {
        self.watch[core.flat_index()].health
    }

    /// Strikes accumulated against `core` over the supervisor's lifetime.
    #[must_use]
    pub fn strikes(&self, core: CoreId) -> u32 {
        self.watch[core.flat_index()].strikes
    }

    /// Whether `core` has been reverted to the static-margin baseline.
    #[must_use]
    pub fn in_safe_mode(&self, core: CoreId) -> bool {
        self.watch[core.flat_index()].phase == Phase::SafeMode
    }

    /// Whether `core` is quarantined (terminal).
    #[must_use]
    pub fn is_quarantined(&self, core: CoreId) -> bool {
        self.watch[core.flat_index()].phase == Phase::Quarantined
    }

    /// Whether `core` is serving a probation (rolled back, awaiting
    /// re-probe).
    #[must_use]
    pub fn on_probation(&self, core: CoreId) -> bool {
        matches!(self.watch[core.flat_index()].phase, Phase::Probation { .. })
    }

    /// The safe-mode margin mode (what a safe-mode core runs at).
    #[must_use]
    pub fn safe_mode_margin() -> MarginMode {
        MarginMode::Static
    }

    /// Digests the per-core ladder into the chip-level health surface a
    /// fleet placement policy consumes (see [`SupervisorSummary`]): how
    /// many cores sit at each rung (probation / safe mode / quarantine)
    /// and the worst health score on the chip.
    ///
    /// # Examples
    ///
    /// ```
    /// use atm_chip::{ChipConfig, FailureEvent, FailureKind, ChipEvent, System};
    /// use atm_core::{MarginSupervisor, SupervisorConfig};
    /// use atm_units::{CoreId, Nanos};
    ///
    /// let sys = System::new(ChipConfig::default());
    /// let mut sup = MarginSupervisor::new(SupervisorConfig::default());
    /// sup.attach(&sys);
    /// assert_eq!(sup.summary().min_health, 100);
    ///
    /// // One failing window strikes the core: rollback + probation.
    /// let failure = ChipEvent::Failure(FailureEvent {
    ///     core: CoreId::new(0, 3),
    ///     kind: FailureKind::SystemCrash,
    ///     at: Nanos::ZERO,
    /// });
    /// let _ = sup.observe_window(&sys, &[failure]);
    /// let s = sup.summary();
    /// assert_eq!((s.probation, s.safe_mode, s.quarantined), (1, 0, 0));
    /// assert_eq!(s.min_health, 70);
    /// ```
    #[must_use]
    pub fn summary(&self) -> SupervisorSummary {
        let mut s = SupervisorSummary {
            quarantined: 0,
            safe_mode: 0,
            probation: 0,
            min_health: 100,
        };
        for w in &self.watch {
            match w.phase {
                Phase::Quarantined => s.quarantined += 1,
                Phase::SafeMode => s.safe_mode += 1,
                Phase::Probation { .. } => s.probation += 1,
                Phase::Fine => {}
            }
            s.min_health = s.min_health.min(w.health);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::{ChipConfig, DroopAlarm, FailureEvent, FailureKind};
    use atm_units::{MegaHz, Nanos};

    fn sys() -> System {
        System::new(ChipConfig::default())
    }

    fn failure(core: CoreId) -> ChipEvent {
        ChipEvent::Failure(FailureEvent {
            core,
            kind: FailureKind::SystemCrash,
            at: Nanos::ZERO,
        })
    }

    fn droop(core: CoreId) -> ChipEvent {
        ChipEvent::Droop(DroopAlarm {
            core,
            dip: MegaHz::new(30.0),
            at: Nanos::ZERO,
        })
    }

    #[test]
    fn failure_strikes_and_rolls_back() {
        let s = sys();
        let mut sup = MarginSupervisor::new(SupervisorConfig::default());
        sup.attach(&s);
        let core = CoreId::new(0, 2);
        let actions = sup.observe_window(&s, &[failure(core)]);
        assert_eq!(actions, vec![SupervisorAction::Rollback { core, steps: 1 }]);
        assert!(sup.on_probation(core));
        assert_eq!(sup.health(core), 70);
        assert_eq!(sup.strikes(core), 1);
    }

    #[test]
    fn alarm_storm_strikes_but_isolated_alarms_do_not() {
        let s = sys();
        let mut sup = MarginSupervisor::new(SupervisorConfig::default());
        sup.attach(&s);
        let core = CoreId::new(1, 0);
        let calm = sup.observe_window(&s, &[droop(core), droop(core)]);
        assert!(calm.is_empty(), "2 alarms under trip=3 must not strike");
        let stormy = sup.observe_window(&s, &[droop(core), droop(core), droop(core)]);
        assert_eq!(stormy.len(), 1);
        assert!(matches!(
            stormy[0],
            SupervisorAction::Rollback { core: c, .. } if c == core
        ));
    }

    #[test]
    fn backoff_doubles_the_probation() {
        let s = sys();
        let cfg = SupervisorConfig::default();
        let mut sup = MarginSupervisor::new(cfg);
        sup.attach(&s);
        let core = CoreId::new(0, 5);
        // First strike: probation needs reprobe_after << 1 = 4 clean
        // windows.
        let _ = sup.observe_window(&s, &[failure(core)]);
        for i in 0..3 {
            let a = sup.observe_window(&s, &[]);
            assert!(a.is_empty(), "window {i} ended probation early");
        }
        let done = sup.observe_window(&s, &[]);
        assert_eq!(done, vec![SupervisorAction::Reprobe { core, steps: 1 }]);
        assert!(!sup.on_probation(core));
        // Second strike: needs 8 clean windows now.
        let _ = sup.observe_window(&s, &[failure(core)]);
        for _ in 0..7 {
            assert!(sup.observe_window(&s, &[]).is_empty());
        }
        assert_eq!(
            sup.observe_window(&s, &[]),
            vec![SupervisorAction::Reprobe { core, steps: 1 }]
        );
    }

    #[test]
    fn three_strikes_revert_to_safe_mode_five_quarantine() {
        let s = sys();
        let mut sup = MarginSupervisor::new(SupervisorConfig::default());
        sup.attach(&s);
        let core = CoreId::new(0, 7);
        let a1 = sup.observe_window(&s, &[failure(core)]);
        let a2 = sup.observe_window(&s, &[failure(core)]);
        assert!(a1
            .iter()
            .chain(&a2)
            .all(|a| matches!(a, SupervisorAction::Rollback { .. })));
        let a3 = sup.observe_window(&s, &[failure(core)]);
        assert_eq!(a3, vec![SupervisorAction::SafeMode { core }]);
        assert!(sup.in_safe_mode(core));
        // A fourth strike keeps it in safe mode without repeating the
        // action; the fifth quarantines.
        let a4 = sup.observe_window(&s, &[failure(core)]);
        assert!(a4.is_empty());
        let a5 = sup.observe_window(&s, &[failure(core)]);
        assert_eq!(a5, vec![SupervisorAction::Quarantine { core }]);
        assert!(sup.is_quarantined(core));
        // Quarantine is terminal: further failures produce nothing.
        assert!(sup.observe_window(&s, &[failure(core)]).is_empty());
        assert_eq!(sup.health(core), 0);
    }

    #[test]
    fn health_recovers_on_clean_windows() {
        let s = sys();
        let mut sup = MarginSupervisor::new(SupervisorConfig::default());
        sup.attach(&s);
        let core = CoreId::new(1, 4);
        let _ = sup.observe_window(&s, &[failure(core)]);
        assert_eq!(sup.health(core), 70);
        for _ in 0..10 {
            let _ = sup.observe_window(&s, &[]);
        }
        assert_eq!(sup.health(core), 100);
    }

    #[test]
    fn strikes_are_per_core() {
        let s = sys();
        let mut sup = MarginSupervisor::new(SupervisorConfig::default());
        sup.attach(&s);
        let victim = CoreId::new(0, 1);
        let healthy = CoreId::new(0, 2);
        for _ in 0..5 {
            let _ = sup.observe_window(&s, &[failure(victim)]);
        }
        assert!(sup.is_quarantined(victim));
        assert!(!sup.is_quarantined(healthy));
        assert_eq!(sup.health(healthy), 100);
    }

    #[test]
    fn summary_tracks_the_ladder() {
        let s = sys();
        let mut sup = MarginSupervisor::new(SupervisorConfig::default());
        sup.attach(&s);
        assert_eq!(
            sup.summary(),
            SupervisorSummary {
                quarantined: 0,
                safe_mode: 0,
                probation: 0,
                min_health: 100
            }
        );
        let probed = CoreId::new(0, 1);
        let gone = CoreId::new(0, 2);
        for _ in 0..5 {
            let _ = sup.observe_window(&s, &[failure(gone)]);
        }
        let _ = sup.observe_window(&s, &[failure(probed)]);
        let summary = sup.summary();
        assert_eq!(summary.quarantined, 1);
        assert_eq!(summary.probation, 1);
        assert_eq!(summary.safe_mode, 0);
        assert_eq!(summary.min_health, 0);
    }

    #[test]
    #[should_panic(expected = "strike ladder")]
    fn inverted_ladder_rejected() {
        let _ = MarginSupervisor::new(SupervisorConfig {
            safe_mode_strikes: 5,
            quarantine_strikes: 3,
            ..SupervisorConfig::default()
        });
    }
}
