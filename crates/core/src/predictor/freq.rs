//! Per-core frequency predictor: `f̄ = −k′·P̄ + b` (Eq. 1, Fig. 12a).

use atm_chip::{MarginMode, System};
use atm_units::{CoreId, MegaHz, Watts};
use atm_workloads::by_name;
use serde::{Deserialize, Serialize};

use super::linear::LinearFit;

/// A core's fitted frequency-vs-chip-power model at its current (deployed)
/// CPM configuration.
///
/// `b` (the intercept) captures the core's static CPM setting; the slope
/// captures the dynamic IR-drop sensitivity — about two MHz lost per watt
/// of chip power on the paper's machines.
///
/// # Examples
///
/// ```no_run
/// use atm_chip::{ChipConfig, System};
/// use atm_core::predictor::FreqPredictor;
/// use atm_units::{CoreId, Watts};
///
/// let mut sys = System::new(ChipConfig::default());
/// let p = FreqPredictor::train(&mut sys, CoreId::new(0, 0));
/// let f = p.predict(Watts::new(120.0));
/// assert!(f.get() > 4000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreqPredictor {
    core: CoreId,
    fit: LinearFit,
}

impl FreqPredictor {
    /// Trains the predictor by sweeping total chip power: 0–7 co-located
    /// high-power (daxpy-class) threads are pinned to the other cores of
    /// the socket while `core` runs ATM, and the settled `(chip power,
    /// frequency)` pairs are fitted by least squares.
    ///
    /// The system's schedule and modes are modified; callers re-schedule
    /// afterwards (training happens at deployment time, before jobs run).
    #[must_use]
    pub fn train(system: &mut System, core: CoreId) -> Self {
        let daxpy = by_name("daxpy").expect("daxpy in catalog").clone();
        system.idle_all();
        system.set_mode_all(MarginMode::Static);
        system.set_mode(core, MarginMode::Atm);

        let proc = core.proc_id();
        let siblings: Vec<CoreId> = proc.cores().filter(|c| *c != core).collect();
        let mut points = Vec::with_capacity(siblings.len() + 1);
        for n_busy in 0..=siblings.len() {
            for (i, sib) in siblings.iter().enumerate() {
                if i < n_busy {
                    system.assign(*sib, daxpy.clone());
                } else {
                    system.assign(*sib, atm_workloads::Workload::idle());
                }
            }
            let report = system.settle();
            let p = report.procs[proc.index()].mean_power;
            let f = report.core(core).mean_freq;
            points.push((p.get(), f.get()));
        }

        system.idle_all();
        FreqPredictor {
            core,
            fit: LinearFit::fit(&points),
        }
    }

    /// The core this predictor models.
    #[must_use]
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The underlying fit (exposes slope, intercept, r²).
    #[must_use]
    pub fn fit(&self) -> &LinearFit {
        &self.fit
    }

    /// MHz lost per additional watt of chip power (a positive number).
    #[must_use]
    pub fn mhz_per_watt(&self) -> f64 {
        -self.fit.slope
    }

    /// Predicted ATM frequency at total chip power `p`.
    #[must_use]
    pub fn predict(&self, p: Watts) -> MegaHz {
        MegaHz::new(self.fit.predict(p.get()).max(0.0))
    }

    /// The chip power budget below which the core sustains frequency `f`.
    #[must_use]
    pub fn power_for(&self, f: MegaHz) -> Watts {
        Watts::new(self.fit.invert(f.get()).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::ChipConfig;

    #[test]
    fn slope_near_two_mhz_per_watt() {
        let mut sys = System::new(ChipConfig::default());
        let p = FreqPredictor::train(&mut sys, CoreId::new(0, 0));
        let k = p.mhz_per_watt();
        assert!(
            (1.0..3.5).contains(&k),
            "Eq. 1 slope {k:.2} MHz/W outside the paper's ~2 MHz/W band"
        );
        assert!(p.fit().r2 > 0.98, "fit r2 {}", p.fit().r2);
    }

    #[test]
    fn prediction_matches_measurement() {
        let mut sys = System::new(ChipConfig::default());
        let core = CoreId::new(0, 3);
        sys.set_reduction(core, 2).unwrap();
        let p = FreqPredictor::train(&mut sys, core);

        // Measure an operating point the training didn't sweep exactly:
        // four busy siblings running stream instead of daxpy.
        let stream = by_name("stream").unwrap().clone();
        sys.set_mode(core, MarginMode::Atm);
        for sib in core.proc_id().cores().filter(|c| *c != core).take(4) {
            sys.assign(sib, stream.clone());
        }
        let report = sys.settle();
        let measured = report.core(core).mean_freq;
        let predicted = p.predict(report.procs[core.proc_id().index()].mean_power);
        let err = (measured.get() - predicted.get()).abs();
        assert!(err < 40.0, "prediction error {err:.1} MHz");
    }

    #[test]
    fn power_for_inverts_predict() {
        let mut sys = System::new(ChipConfig::default());
        let p = FreqPredictor::train(&mut sys, CoreId::new(1, 5));
        let budget = p.power_for(p.predict(Watts::new(100.0)));
        assert!((budget.get() - 100.0).abs() < 1e-6);
    }
}
