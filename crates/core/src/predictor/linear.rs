//! Ordinary least-squares line fitting.

use serde::{Deserialize, Serialize};

/// A fitted line `y = slope·x + intercept` with its coefficient of
/// determination.
///
/// # Examples
///
/// ```
/// use atm_core::predictor::LinearFit;
///
/// let fit = LinearFit::fit(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]);
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!(fit.r2 > 0.999);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination (1 = perfect fit).
    pub r2: f64,
}

impl LinearFit {
    /// Fits a line to `(x, y)` points by ordinary least squares.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given or all `x` are equal.
    #[must_use]
    pub fn fit(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two points");
        let n = points.len() as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
        assert!(sxx > 0.0, "all x values identical; cannot fit a line");
        let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
        let ss_res: f64 = points
            .iter()
            .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
            .sum();
        let r2 = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        LinearFit {
            slope,
            intercept,
            r2,
        }
    }

    /// Evaluates the line at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Solves `y = slope·x + intercept` for `x`.
    ///
    /// # Panics
    ///
    /// Panics if the slope is zero.
    #[must_use]
    pub fn invert(&self, y: f64) -> f64 {
        assert!(self.slope != 0.0, "cannot invert a flat line");
        (y - self.intercept) / self.slope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let points: Vec<(f64, f64)> = (0..10)
            .map(|i| (f64::from(i), 3.0 * f64::from(i) - 7.0))
            .collect();
        let fit = LinearFit::fit(&points);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 7.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let points = [(0.0, 0.1), (1.0, 0.9), (2.0, 2.2), (3.0, 2.8)];
        let fit = LinearFit::fit(&points);
        assert!(fit.r2 < 1.0 && fit.r2 > 0.95);
    }

    #[test]
    fn invert_roundtrip() {
        let fit = LinearFit::fit(&[(0.0, 5.0), (10.0, 25.0)]);
        let x = fit.invert(fit.predict(3.7));
        assert!((x - 3.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn single_point_rejected() {
        let _ = LinearFit::fit(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn vertical_line_rejected() {
        let _ = LinearFit::fit(&[(1.0, 1.0), (1.0, 2.0)]);
    }
}
