//! Frequency and performance predictors (Sec. VII-B/C, Fig. 12).
//!
//! Managing a fine-tuned system needs two models per the paper's Fig. 13:
//!
//! * a per-core **frequency predictor** — ATM frequency as a linear
//!   function of total chip power (Eq. 1: `f̄ = −k′·P̄ + b`, ≈ −2 MHz/W),
//!   because the IR drop on the shared delivery path couples every core's
//!   margin to everyone's power;
//! * a per-application **performance predictor** — performance as a linear
//!   function of core frequency, with a memory-boundedness-dependent slope
//!   (Fig. 12b).
//!
//! Chained, they let the manager infer thread performance from a candidate
//! schedule's chip power.

mod freq;
mod linear;
mod perf;

pub use freq::FreqPredictor;
pub use linear::LinearFit;
pub use perf::PerfPredictor;
