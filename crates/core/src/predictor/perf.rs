//! Per-application performance predictor (Fig. 12b).

use atm_units::MegaHz;
use atm_workloads::Workload;
use serde::{Deserialize, Serialize};

use super::linear::LinearFit;

/// An application's fitted performance-vs-frequency model, normalized to
/// the 4200 MHz static-margin baseline.
///
/// The paper fits each application a linear model whose coefficient
/// depends on memory behaviour: compute-bound x264 gains almost 1:1 with
/// frequency, memory-bound mcf much less.
///
/// # Examples
///
/// ```
/// use atm_core::predictor::PerfPredictor;
/// use atm_units::MegaHz;
/// use atm_workloads::by_name;
///
/// let p = PerfPredictor::train(by_name("x264").unwrap(), MegaHz::new(4200.0));
/// let speedup = p.predict(MegaHz::new(4620.0));
/// assert!(speedup > 1.05 && speedup < 1.12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfPredictor {
    app: String,
    baseline: MegaHz,
    fit: LinearFit,
}

impl PerfPredictor {
    /// Trains the predictor by profiling the application at several fixed
    /// frequencies around the ATM range (4.2–5.2 GHz) and fitting the
    /// observed speedups — the paper's repetitive profiling on a test
    /// tier.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is zero.
    #[must_use]
    pub fn train(app: &Workload, baseline: MegaHz) -> Self {
        assert!(baseline.get() > 0.0, "baseline frequency must be positive");
        let points: Vec<(f64, f64)> = (0..=10)
            .map(|i| {
                let f = MegaHz::new(baseline.get() + f64::from(i) * 100.0);
                (f.get(), app.speedup(f, baseline))
            })
            .collect();
        PerfPredictor {
            app: app.name().to_owned(),
            baseline,
            fit: LinearFit::fit(&points),
        }
    }

    /// The application this predictor models.
    #[must_use]
    pub fn app(&self) -> &str {
        &self.app
    }

    /// The baseline frequency speedups are normalized to.
    #[must_use]
    pub fn baseline(&self) -> MegaHz {
        self.baseline
    }

    /// The underlying fit.
    #[must_use]
    pub fn fit(&self) -> &LinearFit {
        &self.fit
    }

    /// Predicted speedup over the baseline at core frequency `f`.
    #[must_use]
    pub fn predict(&self, f: MegaHz) -> f64 {
        self.fit.predict(f.get())
    }

    /// The core frequency needed to reach `speedup` over the baseline.
    #[must_use]
    pub fn freq_for(&self, speedup: f64) -> MegaHz {
        MegaHz::new(self.fit.invert(speedup).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_workloads::by_name;

    fn base() -> MegaHz {
        MegaHz::new(4200.0)
    }

    #[test]
    fn compute_bound_steeper_than_memory_bound() {
        let x264 = PerfPredictor::train(by_name("x264").unwrap(), base());
        let mcf = PerfPredictor::train(by_name("mcf").unwrap(), base());
        assert!(
            x264.fit().slope > 2.0 * mcf.fit().slope,
            "x264 slope {} not clearly above mcf {}",
            x264.fit().slope,
            mcf.fit().slope
        );
    }

    #[test]
    fn fit_quality_is_high_over_atm_range() {
        for name in ["x264", "mcf", "squeezenet", "gcc"] {
            let p = PerfPredictor::train(by_name(name).unwrap(), base());
            assert!(p.fit().r2 > 0.99, "{name} fit r2 {}", p.fit().r2);
        }
    }

    #[test]
    fn baseline_speedup_is_one() {
        let p = PerfPredictor::train(by_name("squeezenet").unwrap(), base());
        assert!((p.predict(base()) - 1.0).abs() < 0.01);
    }

    #[test]
    fn freq_for_inverts_predict() {
        let p = PerfPredictor::train(by_name("seq2seq").unwrap(), base());
        let f = p.freq_for(1.10);
        assert!((p.predict(f) - 1.10).abs() < 1e-9);
        assert!(f > base(), "10% speedup needs more than baseline clock");
    }
}
