//! Background-workload throttling to a chip power budget (Sec. VII-C).

use std::fmt;

use atm_chip::{MarginMode, PStateTable, System};
use atm_telemetry::{Recorder, TelemetryEvent, ThrottleAction, ThrottleRung};
use atm_units::{CoreId, MegaHz, Watts};
use serde::{Deserialize, Serialize};

/// How a background core is run (in decreasing performance order): full
/// fine-tuned ATM, a fixed DVFS frequency, or power-gated. On POWER7+ the
/// rail is shared, so per-core DVFS changes frequency only — exactly the
/// paper's three knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThrottleSetting {
    /// Aggressive ATM at the deployed CPM configuration.
    AtmMax,
    /// Fixed frequency from the DVFS table.
    Fixed(MegaHz),
    /// Core power-gated.
    Gated,
}

impl ThrottleSetting {
    /// The margin mode implementing this setting.
    #[must_use]
    pub fn margin_mode(&self) -> MarginMode {
        match self {
            ThrottleSetting::AtmMax => MarginMode::Atm,
            ThrottleSetting::Fixed(f) => MarginMode::Fixed(*f),
            ThrottleSetting::Gated => MarginMode::Gated,
        }
    }

    /// The telemetry mirror of this setting: the ladder rung plus the
    /// fixed frequency (zero for the non-DVFS rungs).
    #[must_use]
    pub fn rung(&self) -> (ThrottleRung, MegaHz) {
        match self {
            ThrottleSetting::AtmMax => (ThrottleRung::AtmMax, MegaHz::ZERO),
            ThrottleSetting::Fixed(f) => (ThrottleRung::Fixed, *f),
            ThrottleSetting::Gated => (ThrottleRung::Gated, MegaHz::ZERO),
        }
    }

    /// The candidate ladder, from fastest to slowest, over the given
    /// p-state table.
    #[must_use]
    pub fn ladder(pstates: &PStateTable) -> Vec<ThrottleSetting> {
        let mut ladder = vec![ThrottleSetting::AtmMax];
        ladder.extend(
            pstates
                .states()
                .iter()
                .rev()
                .map(|s| ThrottleSetting::Fixed(s.frequency)),
        );
        ladder.push(ThrottleSetting::Gated);
        ladder
    }

    /// The next rung down the ladder (one notch more throttled), or `None`
    /// if this setting is already [`ThrottleSetting::Gated`] — the
    /// degradation policy's escalation step.
    #[must_use]
    pub fn step_down(&self, pstates: &PStateTable) -> Option<ThrottleSetting> {
        let ladder = ThrottleSetting::ladder(pstates);
        let pos = ladder.iter().position(|s| s == self)?;
        ladder.get(pos + 1).copied()
    }

    /// The setting `depth` rungs below this one, clamped at
    /// [`ThrottleSetting::Gated`] — the power regulator's bulk step.
    /// Settings not on the ladder (a fixed frequency outside the p-state
    /// table) step from the nearest slower rung.
    #[must_use]
    pub fn stepped(&self, pstates: &PStateTable, depth: u32) -> ThrottleSetting {
        let ladder = ThrottleSetting::ladder(pstates);
        let pos = ladder
            .iter()
            .position(|s| s == self)
            .unwrap_or(ladder.len() - 1);
        let idx = (pos + depth as usize).min(ladder.len() - 1);
        ladder[idx]
    }

    /// How many rungs of headroom remain below this setting before the
    /// ladder bottoms out at [`ThrottleSetting::Gated`].
    #[must_use]
    pub fn rungs_below(&self, pstates: &PStateTable) -> u32 {
        let ladder = ThrottleSetting::ladder(pstates);
        let pos = ladder
            .iter()
            .position(|s| s == self)
            .unwrap_or(ladder.len() - 1);
        (ladder.len() - 1 - pos) as u32
    }
}

impl fmt::Display for ThrottleSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThrottleSetting::AtmMax => f.write_str("ATM-max"),
            ThrottleSetting::Fixed(freq) => write!(f, "DVFS {freq}"),
            ThrottleSetting::Gated => f.write_str("gated"),
        }
    }
}

/// A uniform throttle plan for a set of background cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThrottlePlan {
    /// The cores being throttled.
    pub cores: Vec<CoreId>,
    /// The setting applied to each of them.
    pub setting: ThrottleSetting,
}

impl ThrottlePlan {
    /// Applies the plan to the system.
    pub fn apply(&self, system: &mut System) {
        for &core in &self.cores {
            system.set_mode(core, self.setting.margin_mode());
        }
    }

    /// The same cores one rung further down the ladder, or `None` if the
    /// plan is already gated.
    #[must_use]
    pub fn step_down(&self, pstates: &PStateTable) -> Option<ThrottlePlan> {
        self.setting.step_down(pstates).map(|setting| ThrottlePlan {
            cores: self.cores.clone(),
            setting,
        })
    }
}

/// Finds the least-throttled uniform background setting that keeps the
/// socket's measured steady-state chip power at or below `budget`, in the
/// spirit of the paper's manager ("throttles background core frequencies
/// by the minimal amount to control total chip power").
///
/// Each candidate is applied and evaluated at the schedule's settled
/// equilibrium; the first (fastest) candidate within budget wins. If even
/// gating exceeds the budget (e.g. the critical core alone is too hungry),
/// the gated plan is returned — there is nothing more to throttle.
///
/// The chosen plan is left applied to the system and recorded into
/// `rec` as an [`atm_telemetry::ThrottleAction`] event stamped with the
/// recorder's clock; pass [`&mut NullRecorder`](atm_telemetry::NullRecorder) for the
/// zero-overhead unrecorded path.
#[must_use]
pub fn throttle_to_budget<R: Recorder>(
    system: &mut System,
    background_cores: &[CoreId],
    budget: Watts,
    proc_index: usize,
    rec: &mut R,
) -> ThrottlePlan {
    let plan = throttle_to_budget_inner(system, background_cores, budget, proc_index);
    if rec.enabled() && !plan.cores.is_empty() {
        let (rung, freq) = plan.setting.rung();
        rec.record(TelemetryEvent::Throttle(ThrottleAction {
            t: rec.now(),
            cores: plan.cores.len() as u32,
            rung,
            freq,
        }));
    }
    plan
}

fn throttle_to_budget_inner(
    system: &mut System,
    background_cores: &[CoreId],
    budget: Watts,
    proc_index: usize,
) -> ThrottlePlan {
    if background_cores.is_empty() {
        // Nothing to throttle: report the fastest setting rather than a
        // misleading "gated" plan over zero cores.
        return ThrottlePlan {
            cores: Vec::new(),
            setting: ThrottleSetting::AtmMax,
        };
    }
    let ladder = ThrottleSetting::ladder(&system.config().pstates.clone());
    let mut chosen = ThrottleSetting::Gated;
    for setting in ladder {
        let plan = ThrottlePlan {
            cores: background_cores.to_vec(),
            setting,
        };
        plan.apply(system);
        let report = system.settle();
        if report.procs[proc_index].mean_power <= budget {
            chosen = setting;
            break;
        }
    }
    let plan = ThrottlePlan {
        cores: background_cores.to_vec(),
        setting: chosen,
    };
    plan.apply(system);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::ChipConfig;
    use atm_telemetry::NullRecorder;
    use atm_workloads::by_name;

    #[test]
    fn ladder_descends_from_atm_to_gate() {
        let ladder = ThrottleSetting::ladder(&PStateTable::power7_plus());
        assert_eq!(ladder.first(), Some(&ThrottleSetting::AtmMax));
        assert_eq!(ladder.last(), Some(&ThrottleSetting::Gated));
        assert_eq!(ladder.len(), 10); // ATM + 8 p-states + gate
                                      // Fixed frequencies descend.
        let fixed: Vec<f64> = ladder
            .iter()
            .filter_map(|s| match s {
                ThrottleSetting::Fixed(f) => Some(f.get()),
                _ => None,
            })
            .collect();
        assert!(fixed.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn generous_budget_keeps_atm_max() {
        let mut sys = System::new(ChipConfig::default());
        let bg: Vec<CoreId> = (1..8).map(|c| CoreId::new(0, c)).collect();
        let lu = by_name("lu_cb").unwrap().clone();
        for &c in &bg {
            sys.assign(c, lu.clone());
        }
        let plan = throttle_to_budget(&mut sys, &bg, Watts::new(500.0), 0, &mut NullRecorder);
        assert_eq!(plan.setting, ThrottleSetting::AtmMax);
    }

    #[test]
    fn tight_budget_forces_throttling() {
        let mut sys = System::new(ChipConfig::default());
        let bg: Vec<CoreId> = (1..8).map(|c| CoreId::new(0, c)).collect();
        let lu = by_name("lu_cb").unwrap().clone();
        for &c in &bg {
            sys.assign(c, lu.clone());
        }
        let plan = throttle_to_budget(&mut sys, &bg, Watts::new(100.0), 0, &mut NullRecorder);
        assert_ne!(plan.setting, ThrottleSetting::AtmMax);
        let report = sys.settle();
        assert!(report.procs[0].mean_power <= Watts::new(100.0));
    }

    #[test]
    fn impossible_budget_gates() {
        let mut sys = System::new(ChipConfig::default());
        let bg: Vec<CoreId> = (1..8).map(|c| CoreId::new(0, c)).collect();
        let plan = throttle_to_budget(&mut sys, &bg, Watts::new(1.0), 0, &mut NullRecorder);
        assert_eq!(plan.setting, ThrottleSetting::Gated);
    }

    #[test]
    fn step_down_walks_the_ladder_to_gated() {
        let pstates = PStateTable::power7_plus();
        let mut setting = ThrottleSetting::AtmMax;
        let mut hops = 0;
        while let Some(next) = setting.step_down(&pstates) {
            setting = next;
            hops += 1;
        }
        assert_eq!(setting, ThrottleSetting::Gated);
        assert_eq!(hops, ThrottleSetting::ladder(&pstates).len() - 1);
        assert_eq!(ThrottleSetting::Gated.step_down(&pstates), None);
    }

    #[test]
    fn empty_background_plan_is_a_no_op() {
        let mut sys = System::new(ChipConfig::default());
        let plan = throttle_to_budget(&mut sys, &[], Watts::new(1.0), 0, &mut NullRecorder);
        assert!(plan.cores.is_empty());
        assert_eq!(plan.setting, ThrottleSetting::AtmMax);
    }

    #[test]
    fn setting_to_mode_mapping() {
        assert_eq!(ThrottleSetting::AtmMax.margin_mode(), MarginMode::Atm);
        assert_eq!(ThrottleSetting::Gated.margin_mode(), MarginMode::Gated);
        assert_eq!(
            ThrottleSetting::Fixed(MegaHz::new(2100.0)).margin_mode(),
            MarginMode::Fixed(MegaHz::new(2100.0))
        );
    }
}
