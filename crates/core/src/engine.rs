//! The parallel per-core characterization engine with sweep memoization.
//!
//! # Why per-core parallelism is exact, not approximate
//!
//! The paper's characterization (Secs. IV–VI) is a serial walk over the
//! sixteen cores because it runs on one physical machine. In the simulator
//! the walk is *embarrassingly parallel*: each phase quiesces the system —
//! only the core under test runs in ATM mode, every other core sits idle
//! at static margin — and in that posture nothing one core's trials do is
//! visible to another core's trials. Non-ATM cores never advance their
//! random streams, and an idle static core's programmed CPM reduction has
//! no effect on shared physics (rail current, temperature) beyond what the
//! identical idle posture already contributes. Each worker therefore
//! characterizes its claimed core on a private [`SystemShard`] — a fresh
//! replica of the system minted from the configuration — and the merged
//! result is *bit-identical* to the one-worker walk.
//!
//! # The shard / seed model
//!
//! Exact reproducibility across worker counts needs trials to be pure
//! functions of their identity, not of simulation history. Two mechanisms
//! deliver that:
//!
//! * **Baseline reset** — every trial starts from
//!   [`System::reset_baseline`](atm_chip::System::reset_baseline): thermal
//!   state, delivered voltages and tick counters return to the
//!   just-constructed values, so the warm-start fixed point cannot carry
//!   float residue from earlier trials into this one.
//! * **Derived stream seeds** — the focus core's droop and failure-sampling
//!   streams are reseeded per trial from a hash of `(chip seed, core,
//!   reduction, workload, repeat, trial length)`. The same trial identity
//!   always replays the same droop sequence; distinct repeats keep
//!   distinct streams, preserving the repeat-to-repeat spread the paper's
//!   distributions measure.
//!
//! # Sweep memoization
//!
//! With trials pure, their outcomes are cacheable: [`SweepCache`] maps a
//! [`TrialKey`] to its pass/fail verdict and a `(core, reduction)` settle
//! point to its equilibrium frequency, so the limit search
//! ([`find_limit_driven`]) and
//! [`FineTuner::frequency_sweep_memoized`](crate::FineTuner::frequency_sweep_memoized)
//! never re-simulate a visited point — re-running a characterization after
//! the first is almost entirely cache hits, and Fig. 5 sweeps reuse settle
//! points the idle phase already measured.
//!
//! # Fidelity vs. the paper's serial hardware walk
//!
//! The engine reproduces the paper's *methodology* exactly — same phase
//! order (idle → uBench → realistic), same walk, same clamping, same
//! derivation of Table I rows and the Fig. 10 rollback profile. It is not
//! numerically identical to [`LimitTable::characterize`], which replays
//! history-dependent hardware behaviour (each trial inherits the thermal
//! and stream state the previous trial left behind, like the real
//! machine). The engine instead pins every trial to the reproducible
//! baseline above; the paper's own repeat-to-repeat spread (≤ 2 steps)
//! bounds the difference between the two conventions. Within the engine,
//! results are worker-count invariant: `run_parallel(k)` is bit-identical
//! for every `k`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use atm_chip::{CharactStats, ChipConfig, System, SystemShard};
use atm_units::{CoreId, MegaHz};
use atm_workloads::{ubench_set, Workload};

use crate::charact::{
    find_limit_driven, AppCoreProfile, CharactConfig, IdleResult, RealisticResult, UbenchResult,
};
use crate::limits::LimitTable;

/// Domain tag for droop-stream seeds (see [`trial_seed`]).
const DOMAIN_DROOP: u64 = 0x44_52_4F_4F_50; // "DROOP"
/// Domain tag for failure-sampling seeds.
const DOMAIN_FAIL: u64 = 0x46_41_49_4C; // "FAIL"

/// The identity of one characterization trial — the memoization key.
///
/// Trials are pure functions of this key (plus the chip configuration the
/// engine was built with), so equal keys always produce equal outcomes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TrialKey {
    /// Flat index of the core under test.
    pub core: usize,
    /// CPM delay reduction being tested.
    pub reduction: usize,
    /// Name of the workload on the core under test.
    pub workload: String,
    /// Repeat index within the campaign (repeats are independent samples
    /// with distinct random streams).
    pub repeat: usize,
    /// Bit pattern of the trial duration in nanoseconds.
    pub trial_ns_bits: u64,
}

/// Derives a per-trial stream seed from the chip seed and the trial's
/// identity (FNV-1a over the key fields plus a domain tag). Deterministic
/// across platforms and runs.
fn trial_seed(domain: u64, chip_seed: u64, key: &TrialKey) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(domain);
    eat(chip_seed);
    eat(key.core as u64);
    eat(key.reduction as u64);
    eat(key.repeat as u64);
    eat(key.trial_ns_bits);
    for b in key.workload.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Thread-safe memoization cache for characterization sweep points.
///
/// Two tables: trial verdicts keyed by [`TrialKey`], and droop-free settle
/// frequencies keyed by `(core, reduction)`. Lookups are counted; the
/// compute closure runs *outside* the table lock, so concurrent workers
/// never serialize on each other's simulations (their key spaces are
/// disjoint anyway — every key carries its core).
#[derive(Debug, Default)]
pub struct SweepCache {
    trials: Mutex<HashMap<TrialKey, bool>>,
    settles: Mutex<HashMap<(usize, usize), u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SweepCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        SweepCache::default()
    }

    /// Returns the cached verdict for `key`, or runs `compute`, caches its
    /// verdict and returns it.
    pub fn trial<F: FnOnce() -> bool>(&self, key: &TrialKey, compute: F) -> bool {
        if let Some(&v) = self.trials.lock().expect("trial cache poisoned").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        self.trials
            .lock()
            .expect("trial cache poisoned")
            .insert(key.clone(), v);
        v
    }

    /// Returns the cached settle frequency for `(core, reduction)`, or
    /// runs `compute`, caches and returns it.
    pub fn settle<F: FnOnce() -> MegaHz>(
        &self,
        core: usize,
        reduction: usize,
        compute: F,
    ) -> MegaHz {
        let k = (core, reduction);
        if let Some(&bits) = self.settles.lock().expect("settle cache poisoned").get(&k) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return MegaHz::new(f64::from_bits(bits));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let f = compute();
        self.settles
            .lock()
            .expect("settle cache poisoned")
            .insert(k, f.get().to_bits());
        f
    }

    /// Lookups answered from the cache so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to simulate so far. Every miss is exactly one
    /// simulated point, so this doubles as the points-simulated counter.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct points stored (trials plus settle points).
    #[must_use]
    pub fn len(&self) -> usize {
        self.trials.lock().expect("trial cache poisoned").len()
            + self.settles.lock().expect("settle cache poisoned").len()
    }

    /// Whether the cache holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every stored point and zeroes the counters.
    pub fn clear(&self) {
        self.trials.lock().expect("trial cache poisoned").clear();
        self.settles.lock().expect("settle cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// Everything one engine run produces: the Table I limits, the per-phase
/// detail (including the Fig. 10 rollback profile in `realistic`), and
/// execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineResult {
    /// The assembled Table I.
    pub table: LimitTable,
    /// Per-core idle-phase detail (Fig. 7).
    pub idle: Vec<IdleResult>,
    /// Per-core uBench-phase detail (Fig. 8).
    pub ubench: Vec<UbenchResult>,
    /// Realistic-phase detail: per-⟨app, core⟩ profiles and rollbacks
    /// (Figs. 9–10) plus the thread-normal/thread-worst rows.
    pub realistic: RealisticResult,
    /// Execution statistics of this run.
    pub stats: CharactStats,
}

/// One core's completed three-phase pipeline (a worker's unit of output).
struct PerCore {
    idle: IdleResult,
    ubench: UbenchResult,
    profiles: Vec<AppCoreProfile>,
    phase_wall_ns: [u64; 3],
}

/// The parallel characterization engine.
///
/// Owns the chip configuration, the campaign parameters and the
/// [`SweepCache`]; [`CharactEngine::run_parallel`] fans the sixteen cores
/// across worker threads and merges their results deterministically. The
/// cache persists across runs, so repeating a campaign (or sweeping
/// frequencies afterwards through
/// [`FineTuner::frequency_sweep_memoized`](crate::FineTuner::frequency_sweep_memoized)
/// with [`CharactEngine::cache`]) replays cached points instead of
/// re-simulating them.
///
/// # Examples
///
/// ```no_run
/// use atm_chip::ChipConfig;
/// use atm_core::{CharactConfig, CharactEngine};
/// use atm_workloads::realistic_set;
///
/// let engine = CharactEngine::new(ChipConfig::default(), CharactConfig::standard());
/// let eight = engine.run_parallel(&realistic_set(), 8);
/// let serial = engine.run_parallel(&realistic_set(), 1);
/// assert_eq!(eight.table, serial.table); // worker-count invariant
/// assert_eq!(serial.stats.points_simulated, 0); // second run replays the cache
/// println!("{}", eight.stats);
/// ```
#[derive(Debug)]
pub struct CharactEngine {
    config: ChipConfig,
    cfg: CharactConfig,
    cache: SweepCache,
}

impl CharactEngine {
    /// Builds an engine for `config` running campaigns with parameters
    /// `cfg`, starting with an empty sweep cache.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid ([`ChipConfig::validate`]).
    #[must_use]
    pub fn new(config: ChipConfig, cfg: CharactConfig) -> Self {
        config.validate();
        CharactEngine {
            config,
            cfg,
            cache: SweepCache::new(),
        }
    }

    /// The chip configuration the engine characterizes.
    #[must_use]
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// The campaign parameters.
    #[must_use]
    pub fn campaign(&self) -> &CharactConfig {
        &self.cfg
    }

    /// The sweep-memoization cache (shared with
    /// [`FineTuner::frequency_sweep_memoized`](crate::FineTuner::frequency_sweep_memoized)).
    #[must_use]
    pub fn cache(&self) -> &SweepCache {
        &self.cache
    }

    /// Runs the full three-phase characterization (idle → uBench →
    /// realistic over `apps`) with `workers` threads and returns the
    /// merged result. The result — Table I and the per-⟨app, core⟩
    /// rollback profile — is bit-identical for every `workers` value; only
    /// wall-clock statistics differ.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty or `workers` is zero.
    #[must_use]
    pub fn run_parallel(&self, apps: &[&Workload], workers: usize) -> EngineResult {
        assert!(!apps.is_empty(), "need at least one application");
        assert!(workers >= 1, "need at least one worker");

        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();

        let template = System::new(self.config.clone());
        let n_cores = CoreId::all().count();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<PerCore>>> = (0..n_cores).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers.min(n_cores) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_cores {
                        break;
                    }
                    let core = CoreId::from_flat_index(i);
                    let per = self.characterize_core(template.shard(core), apps);
                    *slots[i].lock().expect("result slot poisoned") = Some(per);
                });
            }
        });

        let mut idle = Vec::with_capacity(n_cores);
        let mut ubench = Vec::with_capacity(n_cores);
        let mut per_core_profiles = Vec::with_capacity(n_cores);
        let mut phase_wall_ns = [0u64; 3];
        for slot in slots {
            let per = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("every core characterized");
            for (acc, ns) in phase_wall_ns.iter_mut().zip(per.phase_wall_ns) {
                *acc += ns;
            }
            idle.push(per.idle);
            ubench.push(per.ubench);
            per_core_profiles.push(per.profiles);
        }

        // App-major profile order, matching the serial characterization.
        let mut profiles = Vec::with_capacity(apps.len() * n_cores);
        for a in 0..apps.len() {
            for core_profiles in &per_core_profiles {
                profiles.push(core_profiles[a].clone());
            }
        }
        let realistic = RealisticResult::from_profiles(profiles);

        let mut idle_row = [0usize; 16];
        let mut ubench_row = [0usize; 16];
        for r in &idle {
            idle_row[r.core.flat_index()] = r.idle_limit();
        }
        for r in &ubench {
            ubench_row[r.core.flat_index()] = r.ubench_limit().min(r.idle_limit);
        }
        let table = LimitTable {
            idle: idle_row,
            ubench: ubench_row,
            thread_normal: realistic.thread_normal,
            thread_worst: realistic.thread_worst,
        };
        table.assert_invariants();

        let stats = CharactStats {
            workers,
            points_simulated: self.cache.misses() - misses_before,
            cache_hits: self.cache.hits() - hits_before,
            cache_misses: self.cache.misses() - misses_before,
            idle_wall_ns: phase_wall_ns[0],
            ubench_wall_ns: phase_wall_ns[1],
            realistic_wall_ns: phase_wall_ns[2],
        };
        EngineResult {
            table,
            idle,
            ubench,
            realistic,
            stats,
        }
    }

    /// Convenience alias for the one-worker walk (the serial reference).
    #[must_use]
    pub fn run_serial(&self, apps: &[&Workload]) -> EngineResult {
        self.run_parallel(apps, 1)
    }

    /// Runs the cached trial `(core, workload, reduction, repeat)` —
    /// through the sweep cache like the engine's own searches do.
    #[must_use]
    pub fn trial(
        &self,
        shard: &mut SystemShard,
        workload: &Workload,
        reduction: usize,
        repeat: usize,
    ) -> bool {
        let key = TrialKey {
            core: shard.focus().flat_index(),
            reduction,
            workload: workload.name().to_owned(),
            repeat,
            trial_ns_bits: self.cfg.trial.get().to_bits(),
        };
        let chip_seed = self.config.seed;
        let trial_len = self.cfg.trial;
        self.cache.trial(&key, || {
            shard.run_focus_trial(
                workload,
                reduction,
                trial_len,
                trial_seed(DOMAIN_DROOP, chip_seed, &key),
                trial_seed(DOMAIN_FAIL, chip_seed, &key),
            )
        })
    }

    /// Runs the same trial *without* consulting or filling the cache — the
    /// verification hook the cache-correctness tests use to prove a
    /// memoized verdict equals a fresh simulation.
    #[must_use]
    pub fn trial_uncached(
        &self,
        shard: &mut SystemShard,
        workload: &Workload,
        reduction: usize,
        repeat: usize,
    ) -> bool {
        let key = TrialKey {
            core: shard.focus().flat_index(),
            reduction,
            workload: workload.name().to_owned(),
            repeat,
            trial_ns_bits: self.cfg.trial.get().to_bits(),
        };
        shard.run_focus_trial(
            workload,
            reduction,
            self.cfg.trial,
            trial_seed(DOMAIN_DROOP, self.config.seed, &key),
            trial_seed(DOMAIN_FAIL, self.config.seed, &key),
        )
    }

    /// One core's full three-phase pipeline on its private shard.
    fn characterize_core(&self, mut shard: SystemShard, apps: &[&Workload]) -> PerCore {
        let core = shard.focus();
        let max = shard.system().core(core).cpms().max_reduction();
        let flat = core.flat_index();
        let repeats = self.cfg.repeats;

        // Phase 1: idle (Sec. IV).
        let t0 = Instant::now();
        let idle_workload = Workload::idle();
        let idle_dist = find_limit_driven(max, 0, repeats, 1, |rep, _, r| {
            self.trial(&mut shard, &idle_workload, r, rep)
        });
        let idle_limit = idle_dist.limit();
        let limit_frequency = self
            .cache
            .settle(flat, idle_limit, || shard.settle_focus(idle_limit));
        let idle = IdleResult {
            core,
            distribution: idle_dist,
            limit_frequency,
        };
        let idle_wall = t0.elapsed();

        // Phase 2: uBench (Sec. V), walking down from the idle limit.
        let t1 = Instant::now();
        let set = ubench_set();
        let ubench_dist = find_limit_driven(max, idle_limit, repeats, set.len(), |rep, w, r| {
            self.trial(&mut shard, set[w], r, rep)
        });
        let ubench = UbenchResult {
            core,
            idle_limit,
            distribution: ubench_dist,
        };
        let ubench_limit = ubench.ubench_limit().min(idle_limit);
        let ubench_wall = t1.elapsed();

        // Phase 3: realistic applications (Sec. VI), each walking down
        // from the uBench limit.
        let t2 = Instant::now();
        let mut profiles = Vec::with_capacity(apps.len());
        for app in apps {
            let dist = find_limit_driven(max, ubench_limit, repeats, 1, |rep, _, r| {
                self.trial(&mut shard, app, r, rep)
            });
            profiles.push(AppCoreProfile {
                app: app.name().to_owned(),
                core,
                ubench_limit,
                distribution: dist,
            });
        }
        let realistic_wall = t2.elapsed();

        PerCore {
            idle,
            ubench,
            profiles,
            phase_wall_ns: [
                idle_wall.as_nanos() as u64,
                ubench_wall.as_nanos() as u64,
                realistic_wall.as_nanos() as u64,
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_workloads::by_name;

    fn quick_engine(seed: u64) -> CharactEngine {
        CharactEngine::new(ChipConfig::power7_plus(seed), CharactConfig::quick())
    }

    #[test]
    fn trial_seed_separates_domains_and_keys() {
        let key = TrialKey {
            core: 3,
            reduction: 5,
            workload: "x264".to_owned(),
            repeat: 1,
            trial_ns_bits: 42,
        };
        let mut other = key.clone();
        other.repeat = 2;
        assert_ne!(
            trial_seed(DOMAIN_DROOP, 7, &key),
            trial_seed(DOMAIN_FAIL, 7, &key)
        );
        assert_ne!(
            trial_seed(DOMAIN_DROOP, 7, &key),
            trial_seed(DOMAIN_DROOP, 8, &key)
        );
        assert_ne!(
            trial_seed(DOMAIN_DROOP, 7, &key),
            trial_seed(DOMAIN_DROOP, 7, &other)
        );
        assert_eq!(
            trial_seed(DOMAIN_DROOP, 7, &key),
            trial_seed(DOMAIN_DROOP, 7, &key.clone())
        );
    }

    #[test]
    fn cache_scripted_access_pattern_counts_exactly() {
        let cache = SweepCache::new();
        let key = |r: usize| TrialKey {
            core: 0,
            reduction: r,
            workload: "idle".to_owned(),
            repeat: 0,
            trial_ns_bits: 0,
        };
        let mut computes = 0;
        // Script: A B A A C B — three distinct keys, three repeats.
        for r in [0usize, 1, 0, 0, 2, 1] {
            let _ = cache.trial(&key(r), || {
                computes += 1;
                r % 2 == 0
            });
        }
        assert_eq!(computes, 3, "each distinct key computed exactly once");
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.len(), 3);
        // Verdicts replay from the cache.
        assert!(cache.trial(&key(0), || unreachable!("must be cached")));
        assert!(!cache.trial(&key(1), || unreachable!("must be cached")));
        assert_eq!(cache.hits(), 5);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits() + cache.misses(), 0);
    }

    #[test]
    fn settle_cache_replays_bits() {
        let cache = SweepCache::new();
        let f = cache.settle(4, 2, || MegaHz::new(4711.25));
        let again = cache.settle(4, 2, || unreachable!("must be cached"));
        assert_eq!(f.get().to_bits(), again.get().to_bits());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn memoized_trial_equals_fresh_simulation() {
        let engine = quick_engine(42);
        let core = CoreId::new(0, 2);
        let template = System::new(engine.config().clone());
        let x264 = by_name("x264").unwrap();
        for reduction in [0usize, 2, 4] {
            let mut shard = template.shard(core);
            let memoized = engine.trial(&mut shard, x264, reduction, 0);
            // Re-ask through the cache: must not simulate again.
            let hits_before = engine.cache().hits();
            let cached = engine.trial(&mut shard, x264, reduction, 0);
            assert_eq!(engine.cache().hits(), hits_before + 1);
            // And an uncached fresh simulation agrees bit-for-bit.
            let fresh = engine.trial_uncached(&mut shard, x264, reduction, 0);
            assert_eq!(memoized, cached);
            assert_eq!(memoized, fresh, "reduction {reduction}");
        }
    }

    #[test]
    fn rerun_is_pure_cache_replay() {
        let engine = quick_engine(7);
        let apps = [by_name("gcc").unwrap()];
        let first = engine.run_parallel(&apps, 2);
        assert!(first.stats.points_simulated > 0);
        let second = engine.run_parallel(&apps, 2);
        assert_eq!(second.stats.points_simulated, 0, "{}", second.stats);
        assert_eq!(second.stats.cache_misses, 0);
        assert!(second.stats.cache_hits > 0);
        assert_eq!(first.table, second.table);
        assert_eq!(first.realistic, second.realistic);
    }

    #[test]
    fn engine_table_satisfies_invariants_and_covers_chip() {
        let engine = quick_engine(42);
        let apps = [by_name("x264").unwrap(), by_name("gcc").unwrap()];
        let result = engine.run_parallel(&apps, 4);
        result.table.assert_invariants();
        assert_eq!(result.idle.len(), 16);
        assert_eq!(result.ubench.len(), 16);
        assert_eq!(result.realistic.profiles.len(), 2 * 16);
        // App-major profile order, like the serial characterization.
        assert_eq!(result.realistic.profiles[0].app, "x264");
        assert_eq!(result.realistic.profiles[0].core, CoreId::new(0, 0));
        assert_eq!(result.realistic.profiles[16].app, "gcc");
        assert!(result.stats.points_simulated > 0);
        assert_eq!(result.stats.workers, 4);
        // x264 stresses the margin more than gcc (paper Fig. 9).
        assert!(result.realistic.app_stress("x264") >= result.realistic.app_stress("gcc"));
    }
}
