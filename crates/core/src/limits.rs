//! Table I: per-core ATM reconfiguration limits under every scenario.

use std::fmt;

use atm_units::CoreId;
use serde::{Deserialize, Serialize};

use crate::charact::{idle_characterization, IdleResult, UbenchResult};
use crate::charact::{
    realistic_characterization, ubench_characterization, CharactConfig, RealisticResult,
};
use atm_chip::System;
use atm_telemetry::Recorder;
use atm_workloads::Workload;

/// The paper's Table I: for each of the sixteen cores, the ATM limit (in
/// CPM delay-reduction steps from the preset) under system idle, uBench,
/// normal threads and worst-case threads.
///
/// Invariant: `thread_worst ≤ thread_normal ≤ ubench ≤ idle` per core.
///
/// # Examples
///
/// ```no_run
/// use atm_chip::{ChipConfig, System};
/// use atm_core::{CharactConfig, LimitTable};
/// use atm_workloads::realistic_set;
///
/// let mut sys = System::new(ChipConfig::default());
/// let table = LimitTable::characterize(
///     &mut sys,
///     &realistic_set(),
///     &CharactConfig::standard(),
///     &mut atm_telemetry::NullRecorder,
/// );
/// println!("{table}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LimitTable {
    /// Idle limits (Table I row 1).
    pub idle: [usize; 16],
    /// uBench limits (row 2).
    pub ubench: [usize; 16],
    /// Thread-normal limits (row 3).
    pub thread_normal: [usize; 16],
    /// Thread-worst limits (row 4).
    pub thread_worst: [usize; 16],
}

impl LimitTable {
    /// Runs the full three-phase characterization (idle → uBench →
    /// realistic apps) and assembles the table. Cores are left programmed
    /// at their thread-worst limits.
    ///
    /// Every trial of every phase records through `rec`; pass
    /// [`&mut NullRecorder`](atm_telemetry::NullRecorder) for the
    /// unrecorded path. Also returns detailed results through
    /// [`LimitTable::characterize_detailed`] when the distributions are
    /// needed.
    #[must_use]
    pub fn characterize<R: Recorder>(
        system: &mut System,
        apps: &[&Workload],
        cfg: &CharactConfig,
        rec: &mut R,
    ) -> LimitTable {
        LimitTable::characterize_detailed(system, apps, cfg, rec).0
    }

    /// Like [`LimitTable::characterize`], also returning the per-phase
    /// detail (idle results, uBench results, realistic profiles).
    #[must_use]
    pub fn characterize_detailed<R: Recorder>(
        system: &mut System,
        apps: &[&Workload],
        cfg: &CharactConfig,
        rec: &mut R,
    ) -> (
        LimitTable,
        Vec<IdleResult>,
        Vec<UbenchResult>,
        RealisticResult,
    ) {
        let idle_results = idle_characterization(system, cfg, rec);
        let mut idle = [0usize; 16];
        for r in &idle_results {
            idle[r.core.flat_index()] = r.idle_limit();
        }

        let ubench_results = ubench_characterization(system, &idle, cfg, rec);
        let mut ubench = [0usize; 16];
        for r in &ubench_results {
            ubench[r.core.flat_index()] = r.ubench_limit().min(r.idle_limit);
        }

        let realistic = realistic_characterization(system, &ubench, apps, cfg, rec);

        let table = LimitTable {
            idle,
            ubench,
            thread_normal: realistic.thread_normal,
            thread_worst: realistic.thread_worst,
        };
        table.assert_invariants();
        (table, idle_results, ubench_results, realistic)
    }

    /// Checks the monotonicity invariant.
    ///
    /// # Panics
    ///
    /// Panics if any core violates
    /// `thread_worst ≤ thread_normal ≤ ubench ≤ idle`.
    pub fn assert_invariants(&self) {
        for core in CoreId::all() {
            let i = core.flat_index();
            assert!(
                self.thread_worst[i] <= self.thread_normal[i]
                    && self.thread_normal[i] <= self.ubench[i]
                    && self.ubench[i] <= self.idle[i],
                "{core}: limits not monotone: worst {} normal {} ubench {} idle {}",
                self.thread_worst[i],
                self.thread_normal[i],
                self.ubench[i],
                self.idle[i]
            );
        }
    }

    /// The limit row for the given scenario name (`"idle"`, `"ubench"`,
    /// `"thread-normal"`, `"thread-worst"`).
    #[must_use]
    pub fn row(&self, scenario: &str) -> Option<&[usize; 16]> {
        match scenario {
            "idle" => Some(&self.idle),
            "ubench" => Some(&self.ubench),
            "thread-normal" => Some(&self.thread_normal),
            "thread-worst" => Some(&self.thread_worst),
            _ => None,
        }
    }
}

impl fmt::Display for LimitTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<14}", "")?;
        for core in CoreId::all() {
            write!(f, "{:>5}", core.to_string())?;
        }
        writeln!(f)?;
        for (label, row) in [
            ("idle limit", &self.idle),
            ("uBench limit", &self.ubench),
            ("thread normal", &self.thread_normal),
            ("thread worst", &self.thread_worst),
        ] {
            write!(f, "{label:<14}")?;
            for v in row {
                write!(f, "{v:>5}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LimitTable {
        LimitTable {
            idle: [9, 8, 4, 11, 10, 7, 8, 2, 4, 8, 5, 8, 7, 5, 10, 3],
            ubench: [9, 8, 4, 10, 9, 7, 8, 2, 4, 8, 5, 5, 6, 4, 10, 2],
            thread_normal: [8, 7, 4, 9, 8, 6, 7, 2, 3, 7, 5, 4, 5, 3, 8, 2],
            thread_worst: [6, 6, 3, 6, 6, 5, 5, 2, 3, 3, 5, 3, 3, 2, 6, 2],
        }
    }

    #[test]
    fn paper_table1_satisfies_invariants() {
        table().assert_invariants();
    }

    #[test]
    fn display_renders_all_rows_and_cores() {
        let s = table().to_string();
        assert!(s.contains("P0C0") && s.contains("P1C7"));
        for label in [
            "idle limit",
            "uBench limit",
            "thread normal",
            "thread worst",
        ] {
            assert!(s.contains(label));
        }
    }

    #[test]
    fn row_lookup() {
        let t = table();
        assert_eq!(t.row("idle"), Some(&t.idle));
        assert_eq!(t.row("thread-worst"), Some(&t.thread_worst));
        assert!(t.row("nonsense").is_none());
    }

    #[test]
    #[should_panic(expected = "not monotone")]
    fn invariant_violation_detected() {
        let mut t = table();
        t.thread_worst[0] = 12;
        t.assert_invariants();
    }
}
