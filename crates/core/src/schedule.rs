//! Declarative workload schedules.
//!
//! The manager composes placements imperatively; downstream users usually
//! want to *describe* a schedule — which workload runs where, with how
//! many SMT threads, under which margin mode — and apply it atomically.
//! [`Schedule`] is that description.

use atm_chip::{MarginMode, System};
use atm_units::CoreId;
use atm_workloads::Workload;

/// One core's assignment within a schedule.
#[derive(Debug, Clone)]
pub struct ScheduleEntry {
    /// The target core.
    pub core: CoreId,
    /// The workload to run.
    pub workload: Workload,
    /// SMT threads (1–4).
    pub threads: usize,
    /// The margin mode for the core.
    pub mode: MarginMode,
}

/// A declarative schedule: a set of per-core assignments plus a default
/// posture for unmentioned cores.
///
/// # Examples
///
/// ```
/// use atm_chip::{ChipConfig, MarginMode, System};
/// use atm_core::Schedule;
/// use atm_telemetry::NullRecorder;
/// use atm_units::{CoreId, Nanos};
/// use atm_workloads::by_name;
///
/// let mut sys = System::new(ChipConfig::default());
/// Schedule::new()
///     .run(CoreId::new(0, 0), by_name("squeezenet").unwrap().clone(), MarginMode::Atm)
///     .run_smt(CoreId::new(0, 1), by_name("daxpy").unwrap().clone(), 4, MarginMode::Static)
///     .apply(&mut sys);
/// let report = sys.run(Nanos::new(10_000.0), &mut NullRecorder);
/// assert!(report.is_ok());
/// assert_eq!(report.core(CoreId::new(0, 0)).workload, "squeezenet");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    entries: Vec<ScheduleEntry>,
    idle_mode: MarginMode,
}

impl Schedule {
    /// An empty schedule: every core idles at static margin.
    #[must_use]
    pub fn new() -> Self {
        Schedule {
            entries: Vec::new(),
            idle_mode: MarginMode::Static,
        }
    }

    /// The entries added so far.
    #[must_use]
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// Adds a single-threaded assignment.
    ///
    /// # Panics
    ///
    /// Panics if `core` already has an assignment in this schedule.
    #[must_use]
    pub fn run(self, core: CoreId, workload: Workload, mode: MarginMode) -> Self {
        self.run_smt(core, workload, 1, mode)
    }

    /// Adds an SMT assignment.
    ///
    /// # Panics
    ///
    /// Panics if `core` already has an assignment, or `threads` is not in
    /// `1..=4`.
    #[must_use]
    pub fn run_smt(
        mut self,
        core: CoreId,
        workload: Workload,
        threads: usize,
        mode: MarginMode,
    ) -> Self {
        assert!((1..=4).contains(&threads), "SMT is 4-way, got {threads}");
        assert!(
            !self.entries.iter().any(|e| e.core == core),
            "{core} scheduled twice"
        );
        self.entries.push(ScheduleEntry {
            core,
            workload,
            threads,
            mode,
        });
        self
    }

    /// Sets the posture of cores the schedule does not mention (default:
    /// idle at static margin; [`MarginMode::Gated`] implements the
    /// paper's power-gate-the-idle-cores option).
    #[must_use]
    pub fn idle_cores(mut self, mode: MarginMode) -> Self {
        self.idle_mode = mode;
        self
    }

    /// Applies the schedule to `system`: mentioned cores get their
    /// workload, SMT count and mode; every other core is set to idle in
    /// the schedule's idle posture with issue throttling cleared.
    pub fn apply(&self, system: &mut System) {
        for core in CoreId::all() {
            system.set_issue_throttle(core, None);
            match self.entries.iter().find(|e| e.core == core) {
                Some(e) => {
                    system.assign_smt(core, e.workload.clone(), e.threads);
                    system.set_mode(core, e.mode);
                }
                None => {
                    system.assign(core, Workload::idle());
                    system.set_mode(core, self.idle_mode);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::ChipConfig;
    use atm_telemetry::NullRecorder;
    use atm_units::Nanos;
    use atm_workloads::by_name;

    #[test]
    fn apply_sets_everything() {
        let mut sys = System::new(ChipConfig::default());
        Schedule::new()
            .run(
                CoreId::new(0, 2),
                by_name("gcc").unwrap().clone(),
                MarginMode::Atm,
            )
            .run_smt(
                CoreId::new(1, 1),
                by_name("daxpy").unwrap().clone(),
                4,
                MarginMode::Static,
            )
            .idle_cores(MarginMode::Gated)
            .apply(&mut sys);

        assert_eq!(sys.core(CoreId::new(0, 2)).workload().name(), "gcc");
        assert_eq!(sys.core(CoreId::new(0, 2)).mode(), MarginMode::Atm);
        assert_eq!(sys.core(CoreId::new(1, 1)).smt_threads(), 4);
        assert_eq!(sys.core(CoreId::new(0, 0)).mode(), MarginMode::Gated);
        let report = sys.run(Nanos::new(5_000.0), &mut NullRecorder);
        assert!(report.is_ok());
    }

    #[test]
    fn reapplying_resets_previous_assignments() {
        let mut sys = System::new(ChipConfig::default());
        Schedule::new()
            .run(
                CoreId::new(0, 0),
                by_name("x264").unwrap().clone(),
                MarginMode::Atm,
            )
            .apply(&mut sys);
        Schedule::new().apply(&mut sys);
        assert_eq!(sys.core(CoreId::new(0, 0)).workload().name(), "idle");
        assert_eq!(sys.core(CoreId::new(0, 0)).mode(), MarginMode::Static);
    }

    #[test]
    #[should_panic(expected = "scheduled twice")]
    fn duplicate_core_rejected() {
        let _ = Schedule::new()
            .run(CoreId::new(0, 0), Workload::idle(), MarginMode::Atm)
            .run(CoreId::new(0, 0), Workload::idle(), MarginMode::Static);
    }
}
