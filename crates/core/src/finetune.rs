//! Programming CPM delay reductions (Sec. III-A).

use atm_chip::{MarginMode, System};
use atm_cpm::CpmConfigError;
use atm_units::{CoreId, MegaHz};

use crate::engine::SweepCache;

/// The fine-tuning interface: the software equivalent of the paper's
/// "specialized commands to the service processor" that reprogram a core's
/// CPM inserted delays.
///
/// A `FineTuner` borrows the [`System`] mutably for the duration of a
/// tuning session.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct FineTuner<'a> {
    system: &'a mut System,
}

impl<'a> FineTuner<'a> {
    /// Opens a tuning session on `system`.
    #[must_use]
    pub fn new(system: &'a mut System) -> Self {
        FineTuner { system }
    }

    /// The underlying system.
    #[must_use]
    pub fn system(&self) -> &System {
        self.system
    }

    /// Programs `core`'s CPM delay reduction.
    ///
    /// # Errors
    ///
    /// Returns [`CpmConfigError::ReductionTooLarge`] if `steps` exceeds
    /// the core's smallest preset.
    pub fn set_reduction(&mut self, core: CoreId, steps: usize) -> Result<(), CpmConfigError> {
        self.system.set_reduction(core, steps)
    }

    /// The current reduction of `core`.
    #[must_use]
    pub fn reduction(&self, core: CoreId) -> usize {
        self.system.core(core).reduction()
    }

    /// The largest reduction `core` supports.
    #[must_use]
    pub fn max_reduction(&self, core: CoreId) -> usize {
        self.system.core(core).cpms().max_reduction()
    }

    /// Applies a full per-core reduction map (a deployed configuration).
    ///
    /// # Errors
    ///
    /// Returns the first configuration error; earlier cores stay
    /// programmed (callers deploy validated maps).
    pub fn apply_map(&mut self, reductions: &[usize; 16]) -> Result<(), CpmConfigError> {
        for id in CoreId::all() {
            self.system.set_reduction(id, reductions[id.flat_index()])?;
        }
        Ok(())
    }

    /// Sweeps `core`'s CPM delay reduction from 0 to `max_steps`
    /// (clamped to the core's preset) on an otherwise idle system and
    /// reports the ATM equilibrium frequency at each step — the paper's
    /// Fig. 5 experiment.
    ///
    /// The core's previous reduction and mode are restored afterwards.
    #[must_use]
    pub fn frequency_sweep(&mut self, core: CoreId, max_steps: usize) -> Vec<(usize, MegaHz)> {
        let saved_reduction = self.reduction(core);
        let saved_mode = self.system.core(core).mode();
        self.system.set_mode(core, MarginMode::Atm);

        let top = max_steps.min(self.max_reduction(core));
        let mut points = Vec::with_capacity(top + 1);
        for r in 0..=top {
            self.system
                .set_reduction(core, r)
                .expect("reduction clamped to preset");
            let report = self.system.settle();
            points.push((r, report.core(core).mean_freq));
        }

        self.system
            .set_reduction(core, saved_reduction)
            .expect("restoring a previously-valid reduction");
        self.system.set_mode(core, saved_mode);
        points
    }

    /// Like [`FineTuner::frequency_sweep`], but measured in the canonical
    /// quiesced posture (every core idle at static margin, the swept core
    /// in ATM mode) on a private shard, with each `(core, reduction)`
    /// point memoized in `cache` — points the characterization engine (or
    /// a previous sweep) already settled are never re-simulated.
    ///
    /// Unlike the plain sweep, the tuned system itself is left completely
    /// untouched: the sweep is a pure query against the system's
    /// configuration.
    #[must_use]
    pub fn frequency_sweep_memoized(
        &mut self,
        core: CoreId,
        max_steps: usize,
        cache: &SweepCache,
    ) -> Vec<(usize, MegaHz)> {
        let mut shard = self.system.shard(core);
        let top = max_steps.min(self.max_reduction(core));
        let flat = core.flat_index();
        (0..=top)
            .map(|r| (r, cache.settle(flat, r, || shard.settle_focus(r))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_chip::ChipConfig;

    fn system() -> System {
        System::new(ChipConfig::default())
    }

    #[test]
    fn sweep_is_monotone_nondecreasing() {
        let mut sys = system();
        let core = CoreId::new(0, 1);
        sys.set_mode(core, MarginMode::Atm);
        let sweep = FineTuner::new(&mut sys).frequency_sweep(core, 6);
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1, "sweep not monotone: {sweep:?}");
        }
        assert!(sweep.len() >= 2);
    }

    #[test]
    fn sweep_restores_state() {
        let mut sys = system();
        let core = CoreId::new(1, 4);
        sys.set_reduction(core, 1).unwrap();
        let mode_before = sys.core(core).mode();
        let _ = FineTuner::new(&mut sys).frequency_sweep(core, 5);
        assert_eq!(sys.core(core).reduction(), 1);
        assert_eq!(sys.core(core).mode(), mode_before);
    }

    #[test]
    fn memoized_sweep_matches_shape_and_caches() {
        let mut sys = system();
        let core = CoreId::new(0, 1);
        let cache = SweepCache::new();
        let mode_before = sys.core(core).mode();
        let first = FineTuner::new(&mut sys).frequency_sweep_memoized(core, 6, &cache);
        assert_eq!(first.len(), 7);
        for w in first.windows(2) {
            assert!(w[1].1 >= w[0].1, "memoized sweep not monotone: {first:?}");
        }
        // The system is untouched — no mode or reduction churn.
        assert_eq!(sys.core(core).mode(), mode_before);
        assert_eq!(sys.core(core).reduction(), 0);
        // A second sweep is answered entirely from the cache, bit-exactly.
        let misses = cache.misses();
        let second = FineTuner::new(&mut sys).frequency_sweep_memoized(core, 6, &cache);
        assert_eq!(cache.misses(), misses);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.get().to_bits(), b.1.get().to_bits());
        }
    }

    #[test]
    fn apply_map_programs_every_core() {
        let mut sys = system();
        let mut map = [0usize; 16];
        for (i, slot) in map.iter_mut().enumerate() {
            *slot = (i % 3).min(
                FineTuner::new(&mut System::new(ChipConfig::default()))
                    .max_reduction(CoreId::from_flat_index(i)),
            );
        }
        FineTuner::new(&mut sys).apply_map(&map).unwrap();
        for id in CoreId::all() {
            assert_eq!(sys.core(id).reduction(), map[id.flat_index()]);
        }
    }

    #[test]
    fn over_reduction_propagates_error() {
        let mut sys = system();
        let core = CoreId::new(0, 0);
        let max = sys.core(core).cpms().max_reduction();
        let mut tuner = FineTuner::new(&mut sys);
        assert!(tuner.set_reduction(core, max + 1).is_err());
    }
}
