//! Crash recovery for the ATM stack: sealed checkpoints, failover
//! verification, and fault-campaign bisection.
//!
//! Everything below the fleet router is already a deterministic pure
//! function of `(config, seed)`, and every layer exposes a deep-copy
//! checkpoint (`SystemCheckpoint`, `ManagerCheckpoint`,
//! `ChipServerCheckpoint`, `FleetRunCheckpoint`) satisfying the resume
//! identity
//!
//! ```text
//! run(0..T)  ≡  run(0..k); restore(checkpoint); run(k..T)      (byte-for-byte)
//! ```
//!
//! This crate is the layer that makes those checkpoints *trustworthy and
//! useful*:
//!
//! - [`Snapshot`] seals any checkpoint behind a format version and an
//!   FNV-1a 64 checksum of its exhaustive `Debug` rendering, refusing
//!   corrupted or cross-build state at restore time instead of resuming
//!   a diverged timeline ([`snapshot`]).
//! - [`bisect()`] delta-debugs a failing fault campaign to a minimal
//!   triggering spec set, replaying from checkpoints instead of from
//!   epoch 0 (the [`mod@bisect`] module).
//!
//! The failover machinery itself — hard-failed chips bouncing their
//! batches, the bounded retry/backoff ladder, resurrection from periodic
//! checkpoints with a probation window — lives in the fleet crate
//! ([`atm_fleet::FailoverConfig`]); this crate's tests and the repo's
//! `tests/recovery.rs` suite hold it to the exactly-once law.
//!
//! # Sealing and restoring a fleet run
//!
//! ```
//! use atm_fleet::{FleetConfig, FleetSim};
//! use atm_recovery::Snapshot;
//!
//! let mut run = FleetSim::new(FleetConfig::quick(42).with_chips(2).with_epochs(2))
//!     .unwrap()
//!     .start(1);
//! run.step_epoch(1);
//!
//! // Seal mid-run, keep going, then rewind and replay: byte-identical.
//! let sealed = Snapshot::seal(run.checkpoint());
//! run.step_epoch(1);
//! let first = run.finish();
//!
//! let mut replay = sealed.state().expect("sealed in-process").thaw();
//! replay.step_epoch(1);
//! assert_eq!(replay.finish(), first);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisect;
pub mod snapshot;

pub use bisect::{bisect, BisectConfig, BisectError, BisectOutcome};
pub use snapshot::{fnv1a64, state_digest, Snapshot, SnapshotError, SNAPSHOT_VERSION};
