//! Delta-debugging a failing fault campaign down to its minimal trigger.
//!
//! A fleet campaign that trips some predicate — a chip hard-fails, an
//! SLO collapses, the books stop balancing — usually carries far more
//! injected faults than the one that actually matters. [`bisect`] runs
//! the classic ddmin loop over the campaign's [`FaultSpec`]s and returns
//! a *minimal* failing subset: every spec in it is necessary (removing
//! any one makes the predicate pass).
//!
//! Naively, every subset probe would replay the whole campaign from
//! epoch 0 — O(probes × epochs). The driver instead replays from
//! checkpoints: a single **baseline** pass (no faults injected, every
//! chip armed with a spec-less tick-counter hook) records a
//! [`FleetRunCheckpoint`] at every epoch boundary together with the
//! fleet-wide fault-clock position ([`FleetRun::max_hook_ticks`]). A
//! probe then thaws the latest checkpoint that provably precedes the
//! subset's first firing, re-arms the sub-plan fast-forwarded to the
//! checkpoint's tick position ([`FleetRun::rearm_faults`]), and steps
//! only the remaining window — O(probes × window).
//!
//! Two details keep probes faithful to the full campaign:
//!
//! - **Spec indices are load-bearing.** A [`FaultTarget::Seeded`] spec
//!   draws its core from `(seed, chip, spec-index)`, so *removing* a
//!   spec would silently re-target its neighbours. Probes therefore
//!   **mask** excluded specs — first firing pushed past any horizon —
//!   leaving every surviving spec's index, and hence its resolution,
//!   untouched.
//! - **Observation is free.** The baseline's spec-less hooks (and any
//!   not-yet-exhausted masked spec) keep chips on the exact simulation
//!   path, which is byte-identical to the certified fast path, so the
//!   baseline report equals the no-faults report and probe reports equal
//!   full fresh runs of the same sub-plan.

use atm_faults::{FaultPlan, FaultSpec, FleetFaultPlan};
use atm_fleet::{FleetConfig, FleetReport, FleetRun, FleetRunCheckpoint, FleetSim};
use atm_units::AtmError;
use std::fmt;

#[cfg(doc)]
use atm_faults::FaultTarget;

/// A first firing no run can reach: masked specs park here so they keep
/// their index (and their neighbours' seeded targets) without ever
/// firing.
const MASKED: u64 = u64::MAX;

/// Tuning for one [`bisect`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BisectConfig {
    /// Worker threads for every fleet replay.
    pub workers: usize,
    /// Keep every `n`-th epoch checkpoint during the baseline pass
    /// (1 = every boundary). Sparser marks trade replay time for memory
    /// on long campaigns.
    pub checkpoint_stride: u32,
}

impl Default for BisectConfig {
    fn default() -> Self {
        BisectConfig {
            workers: 1,
            checkpoint_stride: 1,
        }
    }
}

/// Why a bisection could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BisectError {
    /// The fleet config carries no fault campaign to bisect.
    NoCampaign,
    /// The fleet config failed validation.
    Invalid(AtmError),
    /// The *full* campaign does not trip the predicate — there is no
    /// failure to minimize.
    NotTriggered,
    /// The predicate trips with every fault masked, so no fault subset
    /// explains it — the failure lives in the config, not the campaign.
    TriggeredByNothing,
}

impl fmt::Display for BisectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BisectError::NoCampaign => write!(f, "the fleet config arms no fault campaign"),
            BisectError::Invalid(e) => write!(f, "invalid fleet config: {e}"),
            BisectError::NotTriggered => {
                write!(f, "the full campaign does not trip the predicate")
            }
            BisectError::TriggeredByNothing => {
                write!(f, "the predicate trips with every fault masked")
            }
        }
    }
}

impl std::error::Error for BisectError {}

impl From<AtmError> for BisectError {
    fn from(e: AtmError) -> Self {
        BisectError::Invalid(e)
    }
}

/// What a [`bisect`] run found, plus the work it took.
#[derive(Debug, Clone, PartialEq)]
pub struct BisectOutcome {
    /// The minimal failing specs, in campaign order.
    pub minimal: Vec<FaultSpec>,
    /// Their indices into the original plan's `specs`.
    pub minimal_indices: Vec<usize>,
    /// Subset probes replayed (cache-free ddmin probe count).
    pub probes: u32,
    /// Epochs actually stepped across all probes (baseline excluded).
    pub epochs_replayed: u64,
    /// Epochs a fresh-run strategy would have stepped for the same
    /// probes: `probes × campaign epochs`. The checkpoint saving is
    /// `epochs_full − epochs_replayed`.
    pub epochs_full: u64,
}

/// Minimizes `cfg`'s fault campaign against `predicate` (see the module
/// docs for the machinery). The predicate must hold for the full
/// campaign and fail for the empty one; both are verified before the
/// ddmin loop starts.
///
/// # Errors
///
/// See [`BisectError`].
///
/// # Panics
///
/// Panics if `opts.workers` is zero.
pub fn bisect<F>(
    cfg: &FleetConfig,
    predicate: F,
    opts: &BisectConfig,
) -> Result<BisectOutcome, BisectError>
where
    F: Fn(&FleetReport) -> bool,
{
    assert!(opts.workers > 0, "need at least one worker");
    let full = cfg.faults.clone().ok_or(BisectError::NoCampaign)?;
    if full.plan.specs.is_empty() {
        return Err(BisectError::NoCampaign);
    }
    let stride = opts.checkpoint_stride.max(1);

    // Baseline pass: no injections, but a spec-less hook on every chip
    // keeps the fault clock ticking. Record (tick position, checkpoint)
    // at each epoch boundary; the finished report doubles as the
    // empty-subset probe.
    let mut base_cfg = cfg.clone();
    base_cfg.faults = Some(FleetFaultPlan::new(FaultPlan::new("bisect-baseline"), 1));
    let mut run = FleetSim::new(base_cfg)?.start(opts.workers);
    let mut marks: Vec<(u64, FleetRunCheckpoint)> = vec![(run.max_hook_ticks(), run.checkpoint())];
    while !run.done() {
        run.step_epoch(opts.workers);
        if !run.done() && run.epoch().is_multiple_of(stride) {
            marks.push((run.max_hook_ticks(), run.checkpoint()));
        }
    }
    if predicate(&run.finish()) {
        return Err(BisectError::TriggeredByNothing);
    }

    let epochs = u64::from(cfg.epochs);
    let mut probes = 0u32;
    let mut epochs_replayed = 0u64;
    let mut probe = |keep: &[usize]| -> bool {
        probes += 1;
        let mut plan = full.plan.clone();
        for (i, spec) in plan.specs.iter_mut().enumerate() {
            if !keep.contains(&i) {
                spec.start = MASKED;
                spec.period = 0;
                spec.repeats = 1;
            }
        }
        let min_fire = keep
            .iter()
            .map(|&i| full.plan.specs[i].start)
            .min()
            .unwrap_or(MASKED);
        let (_, cp) = marks
            .iter()
            .rev()
            .find(|(ticks, _)| *ticks <= min_fire)
            .unwrap_or(&marks[0]);
        let mut replay: FleetRun = cp.thaw();
        replay.rearm_faults(&FleetFaultPlan::new(plan, full.one_in));
        epochs_replayed += epochs - u64::from(replay.epoch());
        while !replay.done() {
            replay.step_epoch(opts.workers);
        }
        predicate(&replay.finish())
    };

    let all: Vec<usize> = (0..full.plan.specs.len()).collect();
    if !probe(&all) {
        return Err(BisectError::NotTriggered);
    }
    let minimal_indices = ddmin(all, &mut probe);

    let minimal = minimal_indices
        .iter()
        .map(|&i| full.plan.specs[i])
        .collect();
    Ok(BisectOutcome {
        minimal,
        minimal_indices,
        probes,
        epochs_replayed,
        epochs_full: u64::from(probes) * epochs,
    })
}

/// The classic ddmin loop: split the failing set into `granularity`
/// chunks, try each chunk and each complement, recurse on the first that
/// still fails, refine the granularity when nothing does.
fn ddmin(mut current: Vec<usize>, probe: &mut impl FnMut(&[usize]) -> bool) -> Vec<usize> {
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunks = split(&current, granularity);
        let mut reduced = false;

        for chunk in &chunks {
            if probe(chunk) {
                current = chunk.clone();
                granularity = 2;
                reduced = true;
                break;
            }
        }
        if !reduced && granularity > 2 {
            for chunk in &chunks {
                let complement: Vec<usize> = current
                    .iter()
                    .copied()
                    .filter(|i| !chunk.contains(i))
                    .collect();
                if probe(&complement) {
                    current = complement;
                    granularity = (granularity - 1).max(2);
                    reduced = true;
                    break;
                }
            }
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

/// Splits `set` into `n` contiguous, non-empty, disjoint chunks covering
/// it (fewer when `set` is shorter than `n`).
fn split(set: &[usize], n: usize) -> Vec<Vec<usize>> {
    let n = n.min(set.len()).max(1);
    let base = set.len() / n;
    let extra = set.len() % n;
    let mut out = Vec::with_capacity(n);
    let mut at = 0;
    for k in 0..n {
        let len = base + usize::from(k < extra);
        out.push(set[at..at + len].to_vec());
        at += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_without_overlap() {
        let set: Vec<usize> = (0..7).collect();
        for n in 1..=9 {
            let chunks = split(&set, n);
            let flat: Vec<usize> = chunks.iter().flatten().copied().collect();
            assert_eq!(flat, set, "granularity {n}");
            assert!(chunks.iter().all(|c| !c.is_empty()));
        }
    }

    #[test]
    fn ddmin_finds_a_single_culprit() {
        let mut probe = |s: &[usize]| s.contains(&5);
        assert_eq!(ddmin((0..8).collect(), &mut probe), vec![5]);
    }

    #[test]
    fn ddmin_finds_a_conjunction() {
        // The failure needs BOTH 1 and 6.
        let mut probe = |s: &[usize]| s.contains(&1) && s.contains(&6);
        assert_eq!(ddmin((0..8).collect(), &mut probe), vec![1, 6]);
    }
}
