//! Sealed, checksummed snapshots of deterministic state.
//!
//! Every layer of the stack already exposes a deep-copy checkpoint
//! (`SystemCheckpoint`, `ManagerCheckpoint`, `ChipServerCheckpoint`,
//! `FleetRunCheckpoint`). A [`Snapshot`] wraps any of them — any
//! `Debug + Clone` state, in fact — behind a format version and an
//! FNV-1a 64 checksum of the state's exhaustive `Debug` rendering, so a
//! checkpoint that was corrupted (or produced by an incompatible build)
//! is *refused* at restore time instead of silently resuming a diverged
//! timeline.
//!
//! The `Debug` rendering is the right integrity witness here because the
//! whole stack already treats it as the canonical byte-identity format:
//! `f64` renders shortest-roundtrip (equal renderings ⟺ equal bits), the
//! few maps involved are `BTreeMap`s, and the golden files under
//! `tests/data/` pin exactly these renderings.

use std::fmt;

/// The snapshot format version this build seals and accepts.
///
/// Bump it whenever the `Debug` rendering of any checkpointed layer
/// changes shape — a sealed snapshot is only meaningful to the build
/// that produced it (checkpoints are in-memory values, not archives),
/// and the version check turns a cross-build mix-up into a clean error.
pub const SNAPSHOT_VERSION: u32 = 1;

/// FNV-1a 64-bit over `bytes` — the stack's standing checksum for
/// deterministic renderings (no dependencies, stable across platforms).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The FNV-1a 64 digest of a state's exhaustive `Debug` rendering — the
/// byte-identity witness two equal deterministic states must share.
#[must_use]
pub fn state_digest<T: fmt::Debug>(state: &T) -> u64 {
    fnv1a64(format!("{state:?}").as_bytes())
}

/// Why a sealed snapshot was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was sealed by a different format version.
    VersionMismatch {
        /// The version recorded in the snapshot.
        found: u32,
        /// The version this build accepts ([`SNAPSHOT_VERSION`]).
        expected: u32,
    },
    /// The state's digest no longer matches the sealed checksum.
    ChecksumMismatch {
        /// The digest recomputed from the carried state.
        found: u64,
        /// The checksum recorded at seal time.
        expected: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot version {found} (this build accepts {expected})"
                )
            }
            SnapshotError::ChecksumMismatch { found, expected } => write!(
                f,
                "snapshot checksum {found:#018x} does not match sealed {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A versioned, checksummed deep copy of one deterministic state.
///
/// Sealing computes the state's [`state_digest`]; every access through
/// [`state`](Snapshot::state) or [`into_state`](Snapshot::into_state)
/// re-verifies it, so corruption between seal and restore surfaces as a
/// [`SnapshotError`] instead of a diverged resume. The `version` and
/// `checksum` fields are public — deliberately, so integrity tests can
/// corrupt them and prove the refusal path works.
#[derive(Debug, Clone)]
pub struct Snapshot<T> {
    /// Format version at seal time ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// [`state_digest`] of the carried state at seal time.
    pub checksum: u64,
    state: T,
}

impl<T: fmt::Debug> Snapshot<T> {
    /// Seals `state` under the current version and its digest.
    #[must_use]
    pub fn seal(state: T) -> Self {
        Snapshot {
            version: SNAPSHOT_VERSION,
            checksum: state_digest(&state),
            state,
        }
    }

    /// Checks the version and re-derives the checksum.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::VersionMismatch`] when the snapshot was sealed
    /// under a different [`SNAPSHOT_VERSION`];
    /// [`SnapshotError::ChecksumMismatch`] when the carried state no
    /// longer digests to the sealed checksum.
    pub fn verify(&self) -> Result<(), SnapshotError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: self.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let found = state_digest(&self.state);
        if found != self.checksum {
            return Err(SnapshotError::ChecksumMismatch {
                found,
                expected: self.checksum,
            });
        }
        Ok(())
    }

    /// Borrows the sealed state after verifying it.
    ///
    /// # Errors
    ///
    /// Propagates [`Snapshot::verify`]'s errors.
    pub fn state(&self) -> Result<&T, SnapshotError> {
        self.verify()?;
        Ok(&self.state)
    }

    /// Unwraps the sealed state after verifying it.
    ///
    /// # Errors
    ///
    /// Propagates [`Snapshot::verify`]'s errors.
    pub fn into_state(self) -> Result<T, SnapshotError> {
        self.verify()?;
        Ok(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_the_published_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn a_clean_snapshot_round_trips() {
        let snap = Snapshot::seal(vec![1u32, 2, 3]);
        assert_eq!(snap.state().unwrap(), &vec![1, 2, 3]);
        assert_eq!(snap.clone().into_state().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn a_corrupted_checksum_is_refused() {
        let mut snap = Snapshot::seal(String::from("state"));
        snap.checksum ^= 1;
        assert!(matches!(
            snap.verify(),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        assert!(snap.state().is_err());
    }

    #[test]
    fn a_foreign_version_is_refused_before_the_checksum() {
        let mut snap = Snapshot::seal(0u8);
        snap.version += 1;
        assert_eq!(
            snap.verify(),
            Err(SnapshotError::VersionMismatch {
                found: SNAPSHOT_VERSION + 1,
                expected: SNAPSHOT_VERSION,
            })
        );
    }

    #[test]
    fn errors_render_for_operators() {
        let err = SnapshotError::VersionMismatch {
            found: 2,
            expected: 1,
        };
        assert!(err.to_string().contains("version 2"));
    }
}
