//! Serializable snapshots of a recorder's state.
//!
//! The workspace vendors a no-op `serde` shim, so the snapshot carries
//! its own lossless line-oriented text form: [`TelemetrySnapshot::render`]
//! writes it, [`TelemetrySnapshot::parse`] reads it back, and the pair
//! round-trips exactly (`f64` values travel as `to_bits` hex, so not
//! even the last mantissa bit is lost).

use std::fmt::Write as _;

use atm_units::{AtmError, CoreId, MegaHz, CORES_PER_PROC, NUM_PROCS};
use serde::{Deserialize, Serialize};

use crate::event::{
    AdmissionDecision, AdmissionVerdict, CpmReading, DpllStep, DroopEvent, LoopVerdict,
    RollbackEvent, TelemetryEvent, ThrottleAction, ThrottleRung,
};
use crate::metrics::Histogram;
use crate::time::SimTime;

/// Magic first line of the text form.
const HEADER: &str = "atm-telemetry v1";

/// A point-in-time copy of everything a
/// [`RingRecorder`](crate::RingRecorder) holds: ring configuration and
/// occupancy, the retained events, and the metric registries.
///
/// Snapshots are plain data — compare them with `==`, render them with
/// [`render`](TelemetrySnapshot::render), and rebuild them with
/// [`parse`](TelemetrySnapshot::parse).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    pub(crate) capacity: usize,
    pub(crate) recorded: u64,
    pub(crate) dropped: u64,
    pub(crate) clock: SimTime,
    pub(crate) events: Vec<TelemetryEvent>,
    pub(crate) counters: Vec<(String, u64)>,
    pub(crate) gauges: Vec<(String, f64)>,
    pub(crate) histograms: Vec<(String, Histogram)>,
}

impl TelemetrySnapshot {
    /// The source ring's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events offered to the source recorder.
    #[must_use]
    pub fn recorded_events(&self) -> u64 {
        self.recorded
    }

    /// Events the source ring evicted for being over capacity.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// The source recorder's monotonic clock at snapshot time.
    #[must_use]
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// The named counter's value (`None` if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The named gauge's value (`None` if absent).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The named histogram (`None` if absent).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// All counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// All gauges, sorted by name.
    #[must_use]
    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    /// All histograms, sorted by name.
    #[must_use]
    pub fn histograms(&self) -> &[(String, Histogram)] {
        &self.histograms
    }

    /// Renders the snapshot to its canonical text form.
    ///
    /// The format is line-oriented and deterministic: a header, the ring
    /// summary, registries sorted by name, then events oldest first.
    /// `f64` payloads (gauges, frequencies) are written as `to_bits`
    /// hex so [`parse`](TelemetrySnapshot::parse) recovers them exactly.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        let _ = writeln!(out, "capacity {}", self.capacity);
        let _ = writeln!(out, "recorded {}", self.recorded);
        let _ = writeln!(out, "dropped {}", self.dropped);
        let _ = writeln!(out, "clock {}", self.clock.nanos());
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {:016x}", v.to_bits());
        }
        for (name, h) in &self.histograms {
            let _ = write!(
                out,
                "hist {name} {} {} {} {}",
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            );
            for (i, &n) in h.buckets().iter().enumerate() {
                if n != 0 {
                    let _ = write!(out, " {i}:{n}");
                }
            }
            out.push('\n');
        }
        for e in &self.events {
            render_event(&mut out, e);
        }
        out
    }

    /// Parses a snapshot back from the text form written by
    /// [`render`](TelemetrySnapshot::render).
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::Parse`] (with a 1-based line number) on a
    /// missing header, malformed line, unknown token, or out-of-range
    /// core index.
    pub fn parse(text: &str) -> Result<Self, AtmError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| AtmError::parse(1, "empty input"))?;
        if header.trim_end() != HEADER {
            return Err(AtmError::parse(1, format!("expected header {HEADER:?}")));
        }

        let mut snap = TelemetrySnapshot {
            capacity: 0,
            recorded: 0,
            dropped: 0,
            clock: SimTime::ZERO,
            events: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        };

        for (idx, line) in lines {
            let lineno = idx + 1;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_ascii_whitespace();
            let kind = fields.next().unwrap_or_default();
            let rest: Vec<&str> = fields.collect();
            match kind {
                "capacity" => snap.capacity = parse_one(lineno, &rest)?,
                "recorded" => snap.recorded = parse_one(lineno, &rest)?,
                "dropped" => snap.dropped = parse_one(lineno, &rest)?,
                "clock" => snap.clock = SimTime::from_nanos(parse_one(lineno, &rest)?),
                "counter" => {
                    let (name, value) = parse_named(lineno, &rest)?;
                    snap.counters.push((name, parse_num(lineno, value)?));
                }
                "gauge" => {
                    let (name, value) = parse_named(lineno, &rest)?;
                    snap.gauges.push((name, parse_f64_bits(lineno, value)?));
                }
                "hist" => snap.histograms.push(parse_hist(lineno, &rest)?),
                "event" => snap.events.push(parse_event(lineno, &rest)?),
                other => {
                    return Err(AtmError::parse(lineno, format!("unknown record {other:?}")));
                }
            }
        }
        Ok(snap)
    }
}

fn render_event(out: &mut String, e: &TelemetryEvent) {
    match e {
        TelemetryEvent::Cpm(e) => {
            let _ = writeln!(
                out,
                "event cpm {} {} {} {}",
                e.t.nanos(),
                e.core.flat_index(),
                e.units,
                u8::from(e.violation)
            );
        }
        TelemetryEvent::Dpll(e) => {
            let _ = writeln!(
                out,
                "event dpll {} {} {} {:016x}",
                e.t.nanos(),
                e.core.flat_index(),
                e.action.token(),
                e.freq.get().to_bits()
            );
        }
        TelemetryEvent::Droop(e) => {
            let _ = writeln!(
                out,
                "event droop {} {} {:016x}",
                e.t.nanos(),
                e.core.flat_index(),
                e.dip.get().to_bits()
            );
        }
        TelemetryEvent::Throttle(e) => {
            let _ = writeln!(
                out,
                "event throttle {} {} {} {:016x}",
                e.t.nanos(),
                e.cores,
                e.rung.token(),
                e.freq.get().to_bits()
            );
        }
        TelemetryEvent::Admission(e) => {
            let _ = writeln!(
                out,
                "event admission {} {} {} {} {}",
                e.t.nanos(),
                e.stream,
                u8::from(e.critical),
                e.verdict.token(),
                e.backlog_ns
            );
        }
        TelemetryEvent::Rollback(e) => {
            let _ = writeln!(
                out,
                "event rollback {} {} {} {}",
                e.t.nanos(),
                e.core.flat_index(),
                e.steps,
                e.new_reduction
            );
        }
    }
}

fn parse_num<T: std::str::FromStr>(lineno: usize, s: &str) -> Result<T, AtmError> {
    s.parse()
        .map_err(|_| AtmError::parse(lineno, format!("bad number {s:?}")))
}

fn parse_one<T: std::str::FromStr>(lineno: usize, rest: &[&str]) -> Result<T, AtmError> {
    match rest {
        [v] => parse_num(lineno, v),
        _ => Err(AtmError::parse(lineno, "expected exactly one value")),
    }
}

fn parse_named<'a>(lineno: usize, rest: &[&'a str]) -> Result<(String, &'a str), AtmError> {
    match rest {
        [name, value] => Ok(((*name).to_owned(), value)),
        _ => Err(AtmError::parse(lineno, "expected a name and a value")),
    }
}

fn parse_f64_bits(lineno: usize, s: &str) -> Result<f64, AtmError> {
    let bits = u64::from_str_radix(s, 16)
        .map_err(|_| AtmError::parse(lineno, format!("bad f64 bit pattern {s:?}")))?;
    Ok(f64::from_bits(bits))
}

fn parse_bool01(lineno: usize, s: &str) -> Result<bool, AtmError> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(AtmError::parse(
            lineno,
            format!("expected 0 or 1, got {s:?}"),
        )),
    }
}

fn parse_core(lineno: usize, s: &str) -> Result<CoreId, AtmError> {
    let flat: usize = parse_num(lineno, s)?;
    if flat >= NUM_PROCS * CORES_PER_PROC {
        return Err(AtmError::parse(
            lineno,
            format!("core index {flat} out of range"),
        ));
    }
    Ok(CoreId::from_flat_index(flat))
}

fn parse_mhz(lineno: usize, s: &str) -> Result<MegaHz, AtmError> {
    Ok(MegaHz::new(parse_f64_bits(lineno, s)?))
}

fn parse_time(lineno: usize, s: &str) -> Result<SimTime, AtmError> {
    Ok(SimTime::from_nanos(parse_num(lineno, s)?))
}

fn parse_hist(lineno: usize, rest: &[&str]) -> Result<(String, Histogram), AtmError> {
    let [name, count, sum, min, max, buckets @ ..] = rest else {
        return Err(AtmError::parse(lineno, "hist needs name count sum min max"));
    };
    let mut bucket_counts = [0u64; 65];
    for entry in buckets {
        let (i, n) = entry
            .split_once(':')
            .ok_or_else(|| AtmError::parse(lineno, format!("bad bucket entry {entry:?}")))?;
        let i: usize = parse_num(lineno, i)?;
        if i >= bucket_counts.len() {
            return Err(AtmError::parse(
                lineno,
                format!("bucket index {i} out of range"),
            ));
        }
        bucket_counts[i] = parse_num(lineno, n)?;
    }
    let h = Histogram::from_parts(
        bucket_counts,
        parse_num(lineno, sum)?,
        parse_num(lineno, min)?,
        parse_num(lineno, max)?,
    );
    let declared: u64 = parse_num(lineno, count)?;
    if h.count() != declared {
        return Err(AtmError::parse(
            lineno,
            format!(
                "hist count {declared} disagrees with buckets ({})",
                h.count()
            ),
        ));
    }
    Ok(((*name).to_owned(), h))
}

fn parse_event(lineno: usize, rest: &[&str]) -> Result<TelemetryEvent, AtmError> {
    match rest {
        ["cpm", t, core, units, violation] => Ok(TelemetryEvent::Cpm(CpmReading {
            t: parse_time(lineno, t)?,
            core: parse_core(lineno, core)?,
            units: parse_num(lineno, units)?,
            violation: parse_bool01(lineno, violation)?,
        })),
        ["dpll", t, core, action, freq] => Ok(TelemetryEvent::Dpll(DpllStep {
            t: parse_time(lineno, t)?,
            core: parse_core(lineno, core)?,
            action: LoopVerdict::from_token(action)
                .ok_or_else(|| AtmError::parse(lineno, format!("bad dpll action {action:?}")))?,
            freq: parse_mhz(lineno, freq)?,
        })),
        ["droop", t, core, dip] => Ok(TelemetryEvent::Droop(DroopEvent {
            t: parse_time(lineno, t)?,
            core: parse_core(lineno, core)?,
            dip: parse_mhz(lineno, dip)?,
        })),
        ["throttle", t, cores, rung, freq] => Ok(TelemetryEvent::Throttle(ThrottleAction {
            t: parse_time(lineno, t)?,
            cores: parse_num(lineno, cores)?,
            rung: ThrottleRung::from_token(rung)
                .ok_or_else(|| AtmError::parse(lineno, format!("bad throttle rung {rung:?}")))?,
            freq: parse_mhz(lineno, freq)?,
        })),
        ["admission", t, stream, critical, verdict, backlog] => {
            Ok(TelemetryEvent::Admission(AdmissionDecision {
                t: parse_time(lineno, t)?,
                stream: parse_num(lineno, stream)?,
                critical: parse_bool01(lineno, critical)?,
                verdict: AdmissionVerdict::from_token(verdict).ok_or_else(|| {
                    AtmError::parse(lineno, format!("bad admission verdict {verdict:?}"))
                })?,
                backlog_ns: parse_num(lineno, backlog)?,
            }))
        }
        ["rollback", t, core, steps, reduction] => Ok(TelemetryEvent::Rollback(RollbackEvent {
            t: parse_time(lineno, t)?,
            core: parse_core(lineno, core)?,
            steps: parse_num(lineno, steps)?,
            new_reduction: parse_num(lineno, reduction)?,
        })),
        [kind, ..] => Err(AtmError::parse(lineno, format!("unknown event {kind:?}"))),
        [] => Err(AtmError::parse(lineno, "empty event record")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, RingRecorder};

    fn populated_recorder() -> RingRecorder {
        let mut rec = RingRecorder::with_capacity(8);
        rec.advance(2_000);
        rec.incr("dpll.slew_up", 3);
        rec.incr("chip.ticks", 100);
        rec.gauge("manager.budget_w", 147.5);
        rec.observe("serve.latency_ns", 40_000_000);
        rec.observe("serve.latency_ns", 0);
        rec.record(TelemetryEvent::Cpm(CpmReading {
            t: SimTime::from_nanos(10),
            core: CoreId::new(0, 1),
            units: 7,
            violation: false,
        }));
        rec.record(TelemetryEvent::Dpll(DpllStep {
            t: SimTime::from_nanos(11),
            core: CoreId::new(0, 1),
            action: LoopVerdict::SlewUp,
            freq: MegaHz::new(4123.456),
        }));
        rec.record(TelemetryEvent::Droop(DroopEvent {
            t: SimTime::from_nanos(12),
            core: CoreId::new(1, 7),
            dip: MegaHz::new(31.25),
        }));
        rec.record(TelemetryEvent::Throttle(ThrottleAction {
            t: SimTime::from_nanos(13),
            cores: 6,
            rung: ThrottleRung::Fixed,
            freq: MegaHz::new(2166.0),
        }));
        rec.record(TelemetryEvent::Admission(AdmissionDecision {
            t: SimTime::from_nanos(14),
            stream: 2,
            critical: true,
            verdict: AdmissionVerdict::Defer,
            backlog_ns: 9_999,
        }));
        rec.record(TelemetryEvent::Rollback(RollbackEvent {
            t: SimTime::from_nanos(15),
            core: CoreId::new(1, 0),
            steps: 1,
            new_reduction: 4,
        }));
        rec
    }

    #[test]
    fn render_parse_round_trips_every_event_kind() {
        let snap = populated_recorder().snapshot();
        let text = snap.render();
        let back = TelemetrySnapshot::parse(&text).expect("parse rendered snapshot");
        assert_eq!(snap, back);
        // And the round-trip is a fixed point.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn f64_payloads_round_trip_bit_exactly() {
        let mut rec = RingRecorder::with_capacity(2);
        let awkward = 0.1 + 0.2; // not representable prettily in decimal
        rec.gauge("g", awkward);
        let back = TelemetrySnapshot::parse(&rec.snapshot().render()).unwrap();
        assert_eq!(back.gauge("g").unwrap().to_bits(), awkward.to_bits());
    }

    #[test]
    fn accessors_expose_registries() {
        let snap = populated_recorder().snapshot();
        assert_eq!(snap.counter("dpll.slew_up"), Some(3));
        assert_eq!(snap.counter("absent"), None);
        assert!(snap.gauge("manager.budget_w").is_some());
        assert_eq!(snap.histogram("serve.latency_ns").unwrap().count(), 2);
        assert_eq!(snap.events().len(), 6);
        assert_eq!(snap.clock().nanos(), 2_000);
        assert_eq!(snap.capacity(), 8);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(TelemetrySnapshot::parse("").is_err());
        assert!(TelemetrySnapshot::parse("not-the-header\n").is_err());
        let bad_record = format!("{HEADER}\nwhatever 1\n");
        assert!(TelemetrySnapshot::parse(&bad_record).is_err());
        let bad_core = format!("{HEADER}\nevent droop 1 99 0000000000000000\n");
        let err = TelemetrySnapshot::parse(&bad_core).unwrap_err();
        assert!(err.to_string().contains("line 2"), "got: {err}");
        let bad_action = format!("{HEADER}\nevent dpll 1 0 sideways 0000000000000000\n");
        assert!(TelemetrySnapshot::parse(&bad_action).is_err());
    }

    #[test]
    fn parse_rejects_inconsistent_histogram() {
        let text = format!("{HEADER}\nhist h 5 10 1 9 1:2\n");
        assert!(TelemetrySnapshot::parse(&text).is_err());
    }
}
