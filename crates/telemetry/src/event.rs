//! Typed control-loop events.
//!
//! Every event is `Copy` and holds no heap data, so recording one is a
//! handful of moves — cheap enough for the per-tick hot paths. The
//! enums mirror the decision types of the instrumented crates
//! (`atm_dpll::LoopAction`, `atm_serve::Admission`,
//! `atm_core::ThrottleSetting`) without depending on them, keeping this
//! crate at the bottom of the dependency graph.

use std::fmt;

use atm_units::{CoreId, MegaHz};
use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// What an ATM loop step did (mirror of the DPLL crate's `LoopAction`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopVerdict {
    /// Excess margin: frequency slewed up.
    SlewUp,
    /// Margin at the threshold: held.
    Hold,
    /// Margin deficit: frequency slewed down.
    SlewDown,
    /// Violation: clock gated and frequency dropped hard.
    Gate,
}

impl LoopVerdict {
    pub(crate) fn token(self) -> &'static str {
        match self {
            LoopVerdict::SlewUp => "up",
            LoopVerdict::Hold => "hold",
            LoopVerdict::SlewDown => "down",
            LoopVerdict::Gate => "gate",
        }
    }

    pub(crate) fn from_token(s: &str) -> Option<Self> {
        match s {
            "up" => Some(LoopVerdict::SlewUp),
            "hold" => Some(LoopVerdict::Hold),
            "down" => Some(LoopVerdict::SlewDown),
            "gate" => Some(LoopVerdict::Gate),
            _ => None,
        }
    }
}

/// Which rung of the background-throttle ladder a plan sits on (mirror of
/// the management crate's `ThrottleSetting`, minus the exact frequency,
/// which rides in [`ThrottleAction::freq`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThrottleRung {
    /// Aggressive ATM at the deployed configuration.
    AtmMax,
    /// Fixed DVFS frequency.
    Fixed,
    /// Power-gated.
    Gated,
}

impl ThrottleRung {
    pub(crate) fn token(self) -> &'static str {
        match self {
            ThrottleRung::AtmMax => "atm",
            ThrottleRung::Fixed => "fixed",
            ThrottleRung::Gated => "gated",
        }
    }

    pub(crate) fn from_token(s: &str) -> Option<Self> {
        match s {
            "atm" => Some(ThrottleRung::AtmMax),
            "fixed" => Some(ThrottleRung::Fixed),
            "gated" => Some(ThrottleRung::Gated),
            _ => None,
        }
    }
}

/// The verdict for one arriving request (mirror of the serving crate's
/// `Admission`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionVerdict {
    /// Queued now.
    Accept,
    /// Pushed back for a later retry.
    Defer,
    /// Dropped.
    Shed,
}

impl AdmissionVerdict {
    pub(crate) fn token(self) -> &'static str {
        match self {
            AdmissionVerdict::Accept => "accept",
            AdmissionVerdict::Defer => "defer",
            AdmissionVerdict::Shed => "shed",
        }
    }

    pub(crate) fn from_token(s: &str) -> Option<Self> {
        match s {
            "accept" => Some(AdmissionVerdict::Accept),
            "defer" => Some(AdmissionVerdict::Defer),
            "shed" => Some(AdmissionVerdict::Shed),
            _ => None,
        }
    }
}

/// One CPM readout fed to a core's ATM comparator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpmReading {
    /// When the reading was taken.
    pub t: SimTime,
    /// The observed core.
    pub core: CoreId,
    /// The quantized margin in readout units.
    pub units: u32,
    /// Whether the reading showed an outright timing violation.
    pub violation: bool,
}

/// One ATM loop step and the frequency it left the DPLL at.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpllStep {
    /// When the step happened.
    pub t: SimTime,
    /// The stepped core.
    pub core: CoreId,
    /// What the comparator decided.
    pub action: LoopVerdict,
    /// The DPLL frequency after the step.
    pub freq: MegaHz,
}

/// A droop alarm: an ATM core's clock dipped below its rolling mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroopEvent {
    /// When the dip was observed.
    pub t: SimTime,
    /// The drooping core.
    pub core: CoreId,
    /// Depth of the dip below the rolling mean.
    pub dip: MegaHz,
}

/// A background-throttle plan taking effect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrottleAction {
    /// When the plan was applied.
    pub t: SimTime,
    /// How many cores the plan throttles.
    pub cores: u32,
    /// The ladder rung selected.
    pub rung: ThrottleRung,
    /// The fixed frequency for [`ThrottleRung::Fixed`] (zero otherwise).
    pub freq: MegaHz,
}

/// One admission-control verdict for an arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionDecision {
    /// Virtual arrival time of the request.
    pub t: SimTime,
    /// Index of the request's stream.
    pub stream: u32,
    /// Whether the stream is the critical one.
    pub critical: bool,
    /// The verdict.
    pub verdict: AdmissionVerdict,
    /// Backlog (ns of queued work) on the target core at decision time.
    pub backlog_ns: u64,
}

/// A CPM fine-tuning rollback applied to a core in the field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RollbackEvent {
    /// When the rollback was commanded.
    pub t: SimTime,
    /// The rolled-back core.
    pub core: CoreId,
    /// Delay steps rolled back in this command.
    pub steps: u32,
    /// The core's CPM reduction after the rollback.
    pub new_reduction: u32,
}

/// Any event a [`Recorder`](crate::Recorder) can capture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A CPM readout.
    Cpm(CpmReading),
    /// An ATM loop step.
    Dpll(DpllStep),
    /// A droop alarm.
    Droop(DroopEvent),
    /// A throttle plan application.
    Throttle(ThrottleAction),
    /// An admission verdict.
    Admission(AdmissionDecision),
    /// A field CPM rollback.
    Rollback(RollbackEvent),
}

impl TelemetryEvent {
    /// The event's time stamp.
    #[must_use]
    pub fn time(&self) -> SimTime {
        match self {
            TelemetryEvent::Cpm(e) => e.t,
            TelemetryEvent::Dpll(e) => e.t,
            TelemetryEvent::Droop(e) => e.t,
            TelemetryEvent::Throttle(e) => e.t,
            TelemetryEvent::Admission(e) => e.t,
            TelemetryEvent::Rollback(e) => e.t,
        }
    }
}

impl fmt::Display for TelemetryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryEvent::Cpm(e) => write!(
                f,
                "[{}] cpm {}: {} units{}",
                e.t,
                e.core,
                e.units,
                if e.violation { " (violation)" } else { "" }
            ),
            TelemetryEvent::Dpll(e) => {
                write!(
                    f,
                    "[{}] dpll {}: {} -> {}",
                    e.t,
                    e.core,
                    e.action.token(),
                    e.freq
                )
            }
            TelemetryEvent::Droop(e) => write!(f, "[{}] droop {}: dip {}", e.t, e.core, e.dip),
            TelemetryEvent::Throttle(e) => write!(
                f,
                "[{}] throttle {} cores: {} {}",
                e.t,
                e.cores,
                e.rung.token(),
                e.freq
            ),
            TelemetryEvent::Admission(e) => write!(
                f,
                "[{}] admission stream {}: {} (backlog {} ns)",
                e.t,
                e.stream,
                e.verdict.token(),
                e.backlog_ns
            ),
            TelemetryEvent::Rollback(e) => write!(
                f,
                "[{}] rollback {}: {} steps -> reduction {}",
                e.t, e.core, e.steps, e.new_reduction
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        for v in [
            LoopVerdict::SlewUp,
            LoopVerdict::Hold,
            LoopVerdict::SlewDown,
            LoopVerdict::Gate,
        ] {
            assert_eq!(LoopVerdict::from_token(v.token()), Some(v));
        }
        for r in [
            ThrottleRung::AtmMax,
            ThrottleRung::Fixed,
            ThrottleRung::Gated,
        ] {
            assert_eq!(ThrottleRung::from_token(r.token()), Some(r));
        }
        for a in [
            AdmissionVerdict::Accept,
            AdmissionVerdict::Defer,
            AdmissionVerdict::Shed,
        ] {
            assert_eq!(AdmissionVerdict::from_token(a.token()), Some(a));
        }
        assert_eq!(LoopVerdict::from_token("sideways"), None);
    }

    #[test]
    fn events_are_copy_and_timed() {
        let e = TelemetryEvent::Droop(DroopEvent {
            t: SimTime::from_nanos(7),
            core: CoreId::new(0, 3),
            dip: MegaHz::new(30.0),
        });
        let copied = e;
        assert_eq!(copied.time().nanos(), 7);
        assert!(e.to_string().contains("droop"));
    }
}
