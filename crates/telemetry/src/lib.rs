//! `atm-telemetry` — deterministic, allocation-light recording for the
//! ATM control-loop simulation.
//!
//! The paper's methodology is built on *observing* the control loop:
//! CPM bit readings, DPLL frequency steps, droop events, throttle and
//! admission decisions. This crate is the recording layer those hot
//! paths write into:
//!
//! * [`Recorder`] — the sink trait every instrumented hot path is
//!   generic over;
//! * [`NullRecorder`] — the default no-op sink (zero overhead: every
//!   call compiles away under monomorphization);
//! * [`RingRecorder`] — a fixed-capacity ring buffer of typed events
//!   plus counter/gauge/histogram registries and a monotonic sim-time
//!   clock;
//! * [`TelemetryEvent`] and the typed event structs ([`CpmReading`],
//!   [`DpllStep`], [`DroopEvent`], [`ThrottleAction`],
//!   [`AdmissionDecision`], [`RollbackEvent`]) — all `Copy`, no heap;
//! * [`TelemetrySnapshot`] — a serializable snapshot with a lossless
//!   hand-written text form ([`TelemetrySnapshot::render`] /
//!   [`TelemetrySnapshot::parse`]).
//!
//! Recording never perturbs the simulation: recorders only observe, and
//! the instrumented code paths take the recorder as a generic parameter
//! so results are byte-identical under [`NullRecorder`] and
//! [`RingRecorder`] (a property the workspace's test suite asserts).
//!
//! # Examples
//!
//! ```
//! use atm_telemetry::{Recorder, RingRecorder, SimTime, TelemetryEvent};
//!
//! let mut rec = RingRecorder::with_capacity(64);
//! rec.advance(1_000);
//! rec.incr("dpll.slew_up", 1);
//! rec.observe("serve.latency_ns", 40_000_000);
//! rec.record(TelemetryEvent::Droop(atm_telemetry::DroopEvent {
//!     t: rec.now(),
//!     core: atm_units::CoreId::new(0, 0),
//!     dip: atm_units::MegaHz::new(30.0),
//! }));
//!
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("dpll.slew_up"), Some(1));
//! let text = snap.render();
//! let back = atm_telemetry::TelemetrySnapshot::parse(&text).unwrap();
//! assert_eq!(snap, back);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod recorder;
mod snapshot;
mod time;

pub use event::{
    AdmissionDecision, AdmissionVerdict, CpmReading, DpllStep, DroopEvent, LoopVerdict,
    RollbackEvent, TelemetryEvent, ThrottleAction, ThrottleRung,
};
pub use metrics::Histogram;
pub use recorder::{NullRecorder, Recorder, RingRecorder};
pub use snapshot::TelemetrySnapshot;
pub use time::SimTime;
