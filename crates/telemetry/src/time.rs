//! Integer simulated-time stamps.

use std::fmt;
use std::ops::{Add, AddAssign};

use atm_units::Nanos;
use serde::{Deserialize, Serialize};

/// A monotonic simulated-time stamp in integer nanoseconds.
///
/// The simulation's own clocks are `f64`-backed ([`Nanos`]); telemetry
/// stamps are integers so snapshots compare exactly and serialize
/// losslessly. Recorders keep a high-water-mark clock
/// ([`Recorder::now`](crate::Recorder::now)) that only moves forward, so
/// stamps taken from it are monotone even across back-to-back simulation
/// runs that each restart their local clock at zero.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// A stamp from integer nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// A stamp from a simulation clock value, rounded to the nearest
    /// nanosecond (negative values clamp to zero).
    #[must_use]
    pub fn from_sim(t: Nanos) -> Self {
        SimTime(t.get().max(0.0).round() as u64)
    }

    /// The stamp in nanoseconds.
    #[must_use]
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// The later of two stamps.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0.saturating_add(ns))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ns: u64) {
        self.0 = self.0.saturating_add(ns);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_ordering() {
        assert_eq!(SimTime::from_sim(Nanos::new(49.6)).nanos(), 50);
        assert_eq!(SimTime::from_sim(Nanos::new(-3.0)), SimTime::ZERO);
        assert!(SimTime::from_nanos(2) > SimTime::from_nanos(1));
        assert_eq!(
            SimTime::from_nanos(1).max(SimTime::from_nanos(5)).nanos(),
            5
        );
    }

    #[test]
    fn addition_saturates() {
        let mut t = SimTime::from_nanos(u64::MAX - 1);
        t += 10;
        assert_eq!(t.nanos(), u64::MAX);
        assert_eq!((SimTime::from_nanos(3) + 4).nanos(), 7);
    }

    #[test]
    fn display_shows_nanoseconds() {
        assert_eq!(SimTime::from_nanos(42).to_string(), "42 ns");
    }
}
