//! Fixed-memory histogram for integer observations.

use serde::{Deserialize, Serialize};

/// Number of buckets: one for zero plus one per bit position of `u64`.
const BUCKETS: usize = 65;

/// A power-of-two-bucket histogram of `u64` observations.
///
/// Bucket `0` holds the value zero; bucket `i ≥ 1` holds values in
/// `[2^(i−1), 2^i)`. Memory is fixed (65 counters) and every operation
/// is integer-only, so two histograms fed the same observations are
/// identical bit for bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Histogram::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (zero when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (zero when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (zero when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, resolved to the upper bound
    /// of the containing bucket and clamped to the observed maximum
    /// (zero when empty).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// The per-bucket counts (index 0 is the zero bucket).
    #[must_use]
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Rebuilds a histogram from serialized parts. Used by snapshot
    /// parsing; `buckets` must agree with `count` (their sum).
    #[must_use]
    pub(crate) fn from_parts(buckets: [u64; BUCKETS], sum: u64, min: u64, max: u64) -> Self {
        let count = buckets.iter().sum();
        Histogram {
            buckets,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert!((h.mean() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn bucketing_is_power_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.observe(v);
        }
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 2); // 4, 7
        assert_eq!(h.buckets()[4], 1); // 8
        assert_eq!(h.buckets()[11], 1); // 1024
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max());
        assert!(p50 >= 256, "p50 {p50} below its bucket range");
    }

    #[test]
    fn identical_feeds_are_bit_identical() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5u64, 900, 0, 33, 7777] {
            a.observe(v);
            b.observe(v);
        }
        assert_eq!(a, b);
    }
}
