//! The recording sinks.

use std::collections::{BTreeMap, VecDeque};

use crate::event::TelemetryEvent;
use crate::metrics::Histogram;
use crate::snapshot::TelemetrySnapshot;
use crate::time::SimTime;

/// A sink for control-loop telemetry.
///
/// Instrumented hot paths are generic over `R: Recorder`, so the
/// default [`NullRecorder`] monomorphizes to nothing and recording can
/// never perturb simulation results — recorders only observe.
///
/// Metric names (`counter`, `gauge`, `histogram` arguments) are
/// `'static` identifiers such as `"dpll.slew_up"`; they must contain no
/// whitespace so snapshots render to a line-oriented text form.
pub trait Recorder {
    /// Whether this recorder keeps events. Hot paths consult this before
    /// assembling an event, so disabled recorders pay nothing.
    fn enabled(&self) -> bool {
        false
    }

    /// Captures one typed event.
    fn record(&mut self, event: TelemetryEvent);

    /// Adds `by` to the named counter.
    fn incr(&mut self, counter: &'static str, by: u64);

    /// Sets the named gauge to `value`.
    fn gauge(&mut self, gauge: &'static str, value: f64);

    /// Records one observation into the named histogram.
    fn observe(&mut self, histogram: &'static str, value: u64);

    /// Moves the monotonic sim-time clock forward by `ns` nanoseconds.
    fn advance(&mut self, ns: u64) {
        let _ = ns;
    }

    /// Moves the monotonic sim-time clock forward to `t` if `t` is ahead
    /// of it (a high-water mark: the clock never moves backwards).
    fn advance_to(&mut self, t: SimTime) {
        let _ = t;
    }

    /// The current value of the monotonic sim-time clock.
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }
}

impl<R: Recorder + ?Sized> Recorder for &mut R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&mut self, event: TelemetryEvent) {
        (**self).record(event);
    }

    fn incr(&mut self, counter: &'static str, by: u64) {
        (**self).incr(counter, by);
    }

    fn gauge(&mut self, gauge: &'static str, value: f64) {
        (**self).gauge(gauge, value);
    }

    fn observe(&mut self, histogram: &'static str, value: u64) {
        (**self).observe(histogram, value);
    }

    fn advance(&mut self, ns: u64) {
        (**self).advance(ns);
    }

    fn advance_to(&mut self, t: SimTime) {
        (**self).advance_to(t);
    }

    fn now(&self) -> SimTime {
        (**self).now()
    }
}

/// The zero-overhead default sink: every method is an inlined no-op.
///
/// # Examples
///
/// ```
/// use atm_telemetry::{NullRecorder, Recorder};
///
/// let mut rec = NullRecorder;
/// assert!(!rec.enabled());
/// rec.incr("anything", 7); // vanishes
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: TelemetryEvent) {}

    #[inline(always)]
    fn incr(&mut self, _counter: &'static str, _by: u64) {}

    #[inline(always)]
    fn gauge(&mut self, _gauge: &'static str, _value: f64) {}

    #[inline(always)]
    fn observe(&mut self, _histogram: &'static str, _value: u64) {}
}

/// A fixed-capacity ring-buffer recorder with metric registries.
///
/// The ring keeps the **most recent** `capacity` events: when full, the
/// oldest event is dropped and counted in
/// [`RingRecorder::dropped_events`]. Counters, gauges and histograms
/// live in ordered registries (deterministic iteration), and the
/// monotonic sim-time clock ([`Recorder::now`]) high-water-marks every
/// [`Recorder::advance`]/[`Recorder::advance_to`].
///
/// # Examples
///
/// ```
/// use atm_telemetry::{Recorder, RingRecorder, SimTime, TelemetryEvent, DroopEvent};
/// use atm_units::{CoreId, MegaHz};
///
/// let mut rec = RingRecorder::with_capacity(2);
/// for i in 0..3 {
///     rec.record(TelemetryEvent::Droop(DroopEvent {
///         t: SimTime::from_nanos(i),
///         core: CoreId::new(0, 0),
///         dip: MegaHz::new(25.0),
///     }));
/// }
/// // Capacity 2: the oldest of the three was dropped.
/// assert_eq!(rec.events().len(), 2);
/// assert_eq!(rec.dropped_events(), 1);
/// assert_eq!(rec.events()[0].time().nanos(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RingRecorder {
    capacity: usize,
    events: VecDeque<TelemetryEvent>,
    recorded: u64,
    dropped: u64,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    clock: SimTime,
}

impl RingRecorder {
    /// A recorder keeping at most `capacity` events (zero keeps metrics
    /// only: every event is dropped on arrival, but still counted).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        RingRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            ..RingRecorder::default()
        }
    }

    /// The ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> &VecDeque<TelemetryEvent> {
        &self.events
    }

    /// Total events offered via [`Recorder::record`], including dropped
    /// ones.
    #[must_use]
    pub fn recorded_events(&self) -> u64 {
        self.recorded
    }

    /// Events evicted (or rejected by a zero-capacity ring) because the
    /// ring was full.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// The named counter's value (`None` if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The named gauge's value (`None` if never set).
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram (`None` if never observed into).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// A serializable snapshot of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            capacity: self.capacity,
            recorded: self.recorded,
            dropped: self.dropped,
            clock: self.clock,
            events: self.events.iter().copied().collect(),
            counters: self
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        }
    }

    /// Clears events and registries; the monotonic clock is kept (it
    /// never moves backwards).
    pub fn reset(&mut self) {
        self.events.clear();
        self.recorded = 0;
        self.dropped = 0;
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    fn check_name(name: &str) {
        debug_assert!(
            !name.contains(char::is_whitespace),
            "metric name {name:?} must not contain whitespace"
        );
    }
}

impl Recorder for RingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TelemetryEvent) {
        self.recorded += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    fn incr(&mut self, counter: &'static str, by: u64) {
        RingRecorder::check_name(counter);
        *self.counters.entry(counter).or_insert(0) += by;
    }

    fn gauge(&mut self, gauge: &'static str, value: f64) {
        RingRecorder::check_name(gauge);
        self.gauges.insert(gauge, value);
    }

    fn observe(&mut self, histogram: &'static str, value: u64) {
        RingRecorder::check_name(histogram);
        self.histograms.entry(histogram).or_default().observe(value);
    }

    fn advance(&mut self, ns: u64) {
        self.clock += ns;
    }

    fn advance_to(&mut self, t: SimTime) {
        self.clock = self.clock.max(t);
    }

    fn now(&self) -> SimTime {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DroopEvent;
    use atm_units::{CoreId, MegaHz};

    fn droop(t: u64) -> TelemetryEvent {
        TelemetryEvent::Droop(DroopEvent {
            t: SimTime::from_nanos(t),
            core: CoreId::new(0, 0),
            dip: MegaHz::new(30.0),
        })
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut rec = RingRecorder::with_capacity(3);
        for t in 0..10 {
            rec.record(droop(t));
        }
        assert_eq!(rec.events().len(), 3);
        assert_eq!(rec.recorded_events(), 10);
        assert_eq!(rec.dropped_events(), 7);
        let times: Vec<u64> = rec.events().iter().map(|e| e.time().nanos()).collect();
        assert_eq!(times, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_ring_keeps_metrics_only() {
        let mut rec = RingRecorder::with_capacity(0);
        rec.record(droop(1));
        rec.incr("c", 2);
        assert!(rec.events().is_empty());
        assert_eq!(rec.dropped_events(), 1);
        assert_eq!(rec.counter("c"), Some(2));
    }

    #[test]
    fn registries_accumulate() {
        let mut rec = RingRecorder::with_capacity(8);
        rec.incr("a", 1);
        rec.incr("a", 2);
        rec.gauge("g", 1.5);
        rec.gauge("g", 2.5);
        rec.observe("h", 10);
        rec.observe("h", 20);
        assert_eq!(rec.counter("a"), Some(3));
        assert_eq!(rec.gauge_value("g"), Some(2.5));
        assert_eq!(rec.histogram("h").unwrap().count(), 2);
        assert_eq!(rec.counter("missing"), None);
    }

    #[test]
    fn clock_is_monotone() {
        let mut rec = RingRecorder::with_capacity(1);
        rec.advance(100);
        rec.advance_to(SimTime::from_nanos(50)); // behind: ignored
        assert_eq!(rec.now().nanos(), 100);
        rec.advance_to(SimTime::from_nanos(400));
        assert_eq!(rec.now().nanos(), 400);
        rec.advance(10);
        assert_eq!(rec.now().nanos(), 410);
    }

    #[test]
    fn reset_clears_data_but_not_clock() {
        let mut rec = RingRecorder::with_capacity(4);
        rec.record(droop(1));
        rec.incr("c", 1);
        rec.advance(99);
        rec.reset();
        assert!(rec.events().is_empty());
        assert_eq!(rec.recorded_events(), 0);
        assert_eq!(rec.counter("c"), None);
        assert_eq!(rec.now().nanos(), 99);
    }

    #[test]
    fn mut_reference_is_a_recorder() {
        fn drive<R: Recorder>(rec: &mut R) {
            rec.incr("via.ref", 1);
        }
        let mut rec = RingRecorder::with_capacity(1);
        drive(&mut &mut rec);
        let dy: &mut dyn Recorder = &mut rec;
        dy.incr("via.dyn", 1);
        assert_eq!(rec.counter("via.ref"), Some(1));
        assert_eq!(rec.counter("via.dyn"), Some(1));
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut rec = NullRecorder;
        assert!(!rec.enabled());
        rec.record(droop(1));
        rec.incr("x", 1);
        rec.advance(5);
        assert_eq!(rec.now(), SimTime::ZERO);
    }
}
