//! Property tests for the power-delivery, power and thermal models.

use atm_pdn::{DiDtParams, DroopProcess, PdnModel, PowerModel, ThermalModel};
use atm_units::{Celsius, MegaHz, Nanos, Volts, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ir_drop_linear_in_power(p in 0.0f64..250.0, scale in 0.1f64..3.0) {
        let pdn = PdnModel::power7_plus();
        let d1 = pdn.shared_drop(Watts::new(p));
        let d2 = pdn.shared_drop(Watts::new(p * scale));
        prop_assert!((d2.get() - d1.get() * scale).abs() < 1e-12);
    }

    #[test]
    fn delivered_voltage_never_exceeds_setpoint(
        chip in 0.0f64..400.0,
        core in 0.0f64..30.0,
    ) {
        let pdn = PdnModel::power7_plus();
        let v = pdn.core_voltage(Watts::new(chip), Watts::new(core));
        prop_assert!(v <= pdn.setpoint());
        prop_assert!(v.get() >= 0.0);
    }

    #[test]
    fn core_power_scales_with_each_factor(
        f in 2000.0f64..5400.0,
        v_mv in 950u32..1300,
        act in 0.05f64..1.0,
    ) {
        let pm = PowerModel::power7_plus();
        let t = Celsius::new(50.0);
        let v = Volts::new(f64::from(v_mv) / 1000.0);
        let base = pm.core_power(MegaHz::new(f), v, t, act);
        prop_assert!(base.get() > 0.0);
        prop_assert!(pm.core_power(MegaHz::new(f * 1.1), v, t, act) > base);
        prop_assert!(pm.core_power(MegaHz::new(f), v, t, (act * 1.2).min(1.5)) >= base);
    }

    #[test]
    fn leakage_positive_and_monotone_in_temp(t in 20.0f64..95.0) {
        let pm = PowerModel::power7_plus();
        let v = Volts::new(1.2);
        let leak = pm.core_leakage(v, Celsius::new(t));
        prop_assert!(leak.get() > 0.0);
        prop_assert!(pm.core_leakage(v, Celsius::new(t + 5.0)) > leak);
    }

    #[test]
    fn thermal_step_never_overshoots(
        p in 0.0f64..250.0,
        dt_ms in 0.1f64..200.0,
    ) {
        let mut th = ThermalModel::power7_plus();
        let target = th.steady_state(Watts::new(p));
        th.step(Watts::new(p), Nanos::new(dt_ms * 1e6));
        if target.get() >= 40.0 {
            prop_assert!(th.temperature() <= target);
            prop_assert!(th.temperature().get() >= 40.0 - 1e-9);
        }
    }

    #[test]
    fn droop_unseen_never_exceeds_magnitude(
        rate in 0.1f64..6.0,
        mean in 1.0f64..50.0,
        sigma in 0.0f64..15.0,
        sharp in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut p = DroopProcess::new(DiDtParams::new(rate, mean, sigma, sharp), seed);
        for _ in 0..2000 {
            if let Some(e) = p.sample_tick(Nanos::new(50.0)) {
                prop_assert!(e.unseen.get() <= e.magnitude.get() + 1e-12);
                prop_assert!(e.magnitude.get() >= 0.0);
            }
        }
    }

    #[test]
    fn worst_case_quantile_monotone(
        mean in 1.0f64..50.0,
        sigma in 0.1f64..15.0,
        sharp in 0.05f64..1.0,
    ) {
        let p = DiDtParams::new(1.0, mean, sigma, sharp);
        let mut prev = 0.0;
        for q in [0.1, 0.5, 0.9, 0.99] {
            let w = p.worst_case_unseen_mv(q);
            prop_assert!(w >= prev - 1e-9, "quantile {q} not monotone");
            prev = w;
        }
    }
}

#[test]
fn empirical_unseen_tail_matches_analytic_quantile() {
    // The sampled 99th percentile of unseen droops should sit near the
    // analytic prediction used by fast screens.
    let params = DiDtParams::new(4.0, 30.0, 6.0, 0.6);
    let mut p = DroopProcess::new(params, 123);
    let mut unseen: Vec<f64> = Vec::new();
    for _ in 0..400_000 {
        if let Some(e) = p.sample_tick(Nanos::new(50.0)) {
            unseen.push(e.unseen.get());
        }
    }
    assert!(unseen.len() > 10_000);
    unseen.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let empirical_q99 = unseen[(unseen.len() as f64 * 0.99) as usize];
    let analytic = params.worst_case_unseen_mv(0.99);
    let rel = (empirical_q99 - analytic).abs() / analytic;
    assert!(
        rel < 0.06,
        "q99 empirical {empirical_q99:.2} vs analytic {analytic:.2}"
    );
}
