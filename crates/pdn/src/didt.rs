//! Stochastic di/dt droop events.

use atm_units::{Millivolts, Nanos};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Workload-dependent parameters of the di/dt droop process.
///
/// Complex microarchitectural activity — pipeline flushes, bursty issue,
/// synchronized multi-core surges — produces current transients that droop
/// the supply. The droop's *slow* tail is tracked by the ATM loop (which
/// responds within a few cycles); the *sharp leading edge* can outrun the
/// loop. `sharpness` is the fraction of the droop magnitude arriving inside
/// the loop's blind window.
///
/// # Examples
///
/// ```
/// use atm_pdn::DiDtParams;
///
/// let smooth = DiDtParams::new(0.2, 8.0, 2.0, 0.3);
/// let flushy = DiDtParams::new(2.0, 30.0, 6.0, 0.7);
/// assert!(flushy.worst_case_unseen_mv(0.75) > smooth.worst_case_unseen_mv(0.75));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiDtParams {
    /// Mean droop events per microsecond of execution.
    events_per_us: f64,
    /// Mean droop magnitude in millivolts.
    magnitude_mean_mv: f64,
    /// Magnitude standard deviation in millivolts.
    magnitude_sigma_mv: f64,
    /// Fraction of the magnitude arriving faster than the loop can react.
    sharpness: f64,
}

impl DiDtParams {
    /// Creates droop-process parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative, or `sharpness` exceeds 1.
    #[must_use]
    pub fn new(
        events_per_us: f64,
        magnitude_mean_mv: f64,
        magnitude_sigma_mv: f64,
        sharpness: f64,
    ) -> Self {
        assert!(events_per_us >= 0.0, "event rate must be non-negative");
        assert!(magnitude_mean_mv >= 0.0, "magnitude must be non-negative");
        assert!(magnitude_sigma_mv >= 0.0, "sigma must be non-negative");
        assert!((0.0..=1.0).contains(&sharpness), "sharpness out of [0,1]");
        DiDtParams {
            events_per_us,
            magnitude_mean_mv,
            magnitude_sigma_mv,
            sharpness,
        }
    }

    /// A quiet process: no droop events at all (idle cores).
    #[must_use]
    pub fn quiet() -> Self {
        DiDtParams::new(0.0, 0.0, 0.0, 0.0)
    }

    /// Mean droop events per microsecond.
    #[must_use]
    pub fn events_per_us(&self) -> f64 {
        self.events_per_us
    }

    /// Mean droop magnitude.
    #[must_use]
    pub fn magnitude_mean(&self) -> Millivolts {
        Millivolts::new(self.magnitude_mean_mv)
    }

    /// The leading-edge fraction that escapes the control loop.
    #[must_use]
    pub fn sharpness(&self) -> f64 {
        self.sharpness
    }

    /// Scales the droop magnitude (used when multiple SMT threads or
    /// synchronized co-runners amplify the transient).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    #[must_use]
    pub fn amplified(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "amplification must be non-negative");
        DiDtParams {
            magnitude_mean_mv: self.magnitude_mean_mv * factor,
            magnitude_sigma_mv: self.magnitude_sigma_mv * factor,
            ..*self
        }
    }

    /// Analytic `quantile` worst-case *unseen* droop (the part escaping the
    /// loop), in millivolts. Used by fast analytical screens; the simulator
    /// samples the process instead.
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is outside `(0, 1)`.
    #[must_use]
    pub fn worst_case_unseen_mv(&self, quantile: f64) -> f64 {
        assert!((0.0..1.0).contains(&quantile) && quantile > 0.0);
        // Normal quantile approximation: mean + z(q)·sigma.
        let z = inverse_normal_cdf(quantile);
        ((self.magnitude_mean_mv + z * self.magnitude_sigma_mv) * self.sharpness).max(0.0)
    }
}

/// One droop event produced by the process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroopEvent {
    /// Full droop magnitude below the DC operating voltage.
    pub magnitude: Millivolts,
    /// The portion arriving inside the loop's blind window: this much is
    /// *not* compensated before the failure-relevant cycles execute.
    pub unseen: Millivolts,
}

/// A seeded sampler of di/dt droop events over simulation ticks.
///
/// # Examples
///
/// ```
/// use atm_pdn::{DiDtParams, DroopProcess};
/// use atm_units::Nanos;
///
/// let mut p = DroopProcess::new(DiDtParams::new(5.0, 25.0, 5.0, 0.6), 7);
/// let events: usize = (0..10_000)
///     .filter_map(|_| p.sample_tick(Nanos::new(50.0)))
///     .count();
/// assert!(events > 0, "a noisy workload must produce droops");
/// ```
#[derive(Debug, Clone)]
pub struct DroopProcess {
    params: DiDtParams,
    rng: StdRng,
    /// Memoized `(rate bits, 1 - exp(-rate))` of the last tick: the event
    /// probability is a pure function of the per-tick rate, which is
    /// constant while the workload and tick length are — caching it keyed
    /// on the exact rate bits removes one `exp` per tick without changing
    /// any emitted value.
    p_event_cache: Option<(u64, f64)>,
}

impl DroopProcess {
    /// Creates a droop process with its own RNG stream.
    #[must_use]
    pub fn new(params: DiDtParams, seed: u64) -> Self {
        DroopProcess {
            params,
            rng: StdRng::seed_from_u64(seed),
            p_event_cache: None,
        }
    }

    /// The process parameters.
    #[must_use]
    pub fn params(&self) -> &DiDtParams {
        &self.params
    }

    /// Replaces the parameters (when the workload on a core changes).
    pub fn set_params(&mut self, params: DiDtParams) {
        self.params = params;
    }

    /// Restarts the random stream from `seed`, discarding any previously
    /// consumed state. Two processes reseeded identically produce the same
    /// event sequence regardless of their histories — the primitive that
    /// lets characterization trials be replayed bit-exactly.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Samples one simulation tick of length `dt`; returns a droop event
    /// if one fired within the tick.
    ///
    /// At most one event per tick is reported (ticks are shorter than the
    /// droop recovery time, so coincident events merge in reality too).
    #[inline]
    pub fn sample_tick(&mut self, dt: Nanos) -> Option<DroopEvent> {
        let rate = self.params.events_per_us * dt.get() / 1000.0;
        if rate <= 0.0 {
            return None;
        }
        let p_event = match self.p_event_cache {
            Some((key, p)) if key == rate.to_bits() => p,
            _ => {
                let p = 1.0 - (-rate).exp();
                self.p_event_cache = Some((rate.to_bits(), p));
                p
            }
        };
        if !self.rng.gen_bool(p_event.clamp(0.0, 1.0)) {
            return None;
        }
        let gauss = {
            let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let magnitude =
            (self.params.magnitude_mean_mv + gauss * self.params.magnitude_sigma_mv).max(0.0);
        Some(DroopEvent {
            magnitude: Millivolts::new(magnitude),
            unseen: Millivolts::new(magnitude * self.params.sharpness),
        })
    }
}

/// A deterministic injected load-step burst: a workload-surge droop with a
/// known magnitude and leading-edge sharpness, used by fault campaigns to
/// place worst-case transients at exact simulation ticks (unlike
/// [`DroopProcess`], which samples stochastically).
///
/// # Examples
///
/// ```
/// use atm_pdn::LoadStep;
///
/// let step = LoadStep::new(40.0, 0.75);
/// let (seen, unseen) = step.split();
/// assert!((seen - 10.0).abs() < 1e-12);
/// assert!((unseen - 30.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadStep {
    magnitude_mv: f64,
    sharpness: f64,
}

impl LoadStep {
    /// Creates a load step of `magnitude_mv` millivolts with the given
    /// leading-edge `sharpness` (the fraction escaping the loop's
    /// response window).
    ///
    /// # Panics
    ///
    /// Panics if `magnitude_mv` is negative or `sharpness` is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn new(magnitude_mv: f64, sharpness: f64) -> Self {
        assert!(
            magnitude_mv.is_finite() && magnitude_mv >= 0.0,
            "load-step magnitude must be a non-negative finite millivolt value"
        );
        assert!((0.0..=1.0).contains(&sharpness), "sharpness out of [0,1]");
        LoadStep {
            magnitude_mv,
            sharpness,
        }
    }

    /// The full droop magnitude in millivolts.
    #[must_use]
    pub fn magnitude_mv(&self) -> f64 {
        self.magnitude_mv
    }

    /// The leading-edge fraction escaping the control loop.
    #[must_use]
    pub fn sharpness(&self) -> f64 {
        self.sharpness
    }

    /// Splits the droop into its `(seen, unseen)` millivolt components:
    /// the slow tail the ATM loop tracks, and the sharp leading edge that
    /// outruns it.
    #[must_use]
    #[inline]
    pub fn split(&self) -> (f64, f64) {
        let unseen = self.magnitude_mv * self.sharpness;
        (self.magnitude_mv - unseen, unseen)
    }
}

/// Acklam-style rational approximation of the standard normal quantile,
/// accurate to ~1e-4 over (0.001, 0.999) — ample for stress quantiles.
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p) && p > 0.0);
    // Beasley-Springer-Moro.
    let a = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    let b = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    let c = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    let d = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_process_never_fires() {
        let mut p = DroopProcess::new(DiDtParams::quiet(), 1);
        for _ in 0..10_000 {
            assert!(p.sample_tick(Nanos::new(50.0)).is_none());
        }
    }

    #[test]
    fn event_rate_approximately_matches() {
        let mut p = DroopProcess::new(DiDtParams::new(1.0, 20.0, 4.0, 0.5), 2);
        let ticks = 200_000;
        let dt = Nanos::new(50.0);
        let events = (0..ticks).filter_map(|_| p.sample_tick(dt)).count();
        // Expected: 1 per us = 0.05 per tick -> ~10_000 events.
        let expected = 0.05 * f64::from(ticks) * (1.0 - 0.05 / 2.0); // Poisson merge correction
        let ratio = events as f64 / expected;
        assert!(
            (0.85..1.15).contains(&ratio),
            "rate off: {events} vs ~{expected}"
        );
    }

    #[test]
    fn unseen_fraction_is_sharpness() {
        let mut p = DroopProcess::new(DiDtParams::new(10.0, 25.0, 5.0, 0.6), 3);
        let e = loop {
            if let Some(e) = p.sample_tick(Nanos::new(100.0)) {
                break e;
            }
        };
        assert!((e.unseen.get() - e.magnitude.get() * 0.6).abs() < 1e-9);
    }

    #[test]
    fn magnitudes_never_negative() {
        let mut p = DroopProcess::new(DiDtParams::new(20.0, 5.0, 10.0, 1.0), 4);
        for _ in 0..50_000 {
            if let Some(e) = p.sample_tick(Nanos::new(50.0)) {
                assert!(e.magnitude.get() >= 0.0);
                assert!(e.unseen.get() >= 0.0);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let collect = |seed| {
            let mut p = DroopProcess::new(DiDtParams::new(5.0, 25.0, 5.0, 0.5), seed);
            (0..1000)
                .filter_map(|_| p.sample_tick(Nanos::new(50.0)))
                .map(|e| e.magnitude.get())
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    fn reseed_replays_stream_exactly() {
        let params = DiDtParams::new(5.0, 25.0, 5.0, 0.5);
        let mut p = DroopProcess::new(params, 7);
        let first: Vec<f64> = (0..1000)
            .filter_map(|_| p.sample_tick(Nanos::new(50.0)))
            .map(|e| e.magnitude.get())
            .collect();
        // Consume an arbitrary amount of extra state, then reseed.
        for _ in 0..137 {
            let _ = p.sample_tick(Nanos::new(50.0));
        }
        p.reseed(7);
        let replayed: Vec<f64> = (0..1000)
            .filter_map(|_| p.sample_tick(Nanos::new(50.0)))
            .map(|e| e.magnitude.get())
            .collect();
        assert_eq!(first, replayed);
    }

    #[test]
    fn worst_case_quantile_ordering() {
        let p = DiDtParams::new(2.0, 30.0, 6.0, 0.7);
        assert!(p.worst_case_unseen_mv(0.99) > p.worst_case_unseen_mv(0.5));
        // Median unseen = mean · sharpness.
        assert!((p.worst_case_unseen_mv(0.5) - 21.0).abs() < 0.1);
    }

    #[test]
    fn amplified_scales_magnitude() {
        let p = DiDtParams::new(2.0, 30.0, 6.0, 0.7).amplified(1.5);
        assert!((p.magnitude_mean().get() - 45.0).abs() < 1e-12);
        assert!((p.sharpness() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn load_step_split_partitions_magnitude() {
        let step = LoadStep::new(32.0, 0.6);
        let (seen, unseen) = step.split();
        assert!((seen + unseen - 32.0).abs() < 1e-12);
        assert!((unseen - 19.2).abs() < 1e-12);
    }

    #[test]
    fn load_step_extremes() {
        let all_seen = LoadStep::new(20.0, 0.0).split();
        assert_eq!(all_seen, (20.0, 0.0));
        let all_unseen = LoadStep::new(20.0, 1.0).split();
        assert_eq!(all_unseen, (0.0, 20.0));
    }

    #[test]
    #[should_panic(expected = "sharpness")]
    fn load_step_rejects_bad_sharpness() {
        let _ = LoadStep::new(20.0, 1.5);
    }

    #[test]
    fn inverse_normal_cdf_sanity() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.975) - 1.96).abs() < 1e-3);
        assert!((inverse_normal_cdf(0.025) + 1.96).abs() < 1e-3);
    }
}
