//! Dynamic and leakage power of cores and chip.

use atm_units::{Celsius, MegaHz, Volts, Watts};
use serde::{Deserialize, Serialize};

/// Power model for one processor chip: per-core dynamic power
/// `Ceff·a·V²·f`, per-core leakage `L0·V·e^(kL·(T−Tnom))`, and a constant
/// uncore/nest term.
///
/// Calibrated so eight daxpy threads at the ATM operating point draw about
/// 160 W chip power, matching the paper's stress-test observation.
///
/// # Examples
///
/// ```
/// use atm_pdn::PowerModel;
/// use atm_units::{Celsius, MegaHz, Volts, Watts};
///
/// let pm = PowerModel::power7_plus();
/// let idle = pm.core_power(MegaHz::new(4600.0), Volts::new(1.24), Celsius::new(45.0), 0.05);
/// let daxpy = pm.core_power(MegaHz::new(4600.0), Volts::new(1.21), Celsius::new(65.0), 0.95);
/// assert!(daxpy.get() > 5.0 * idle.get());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Effective switched capacitance term, in W / (MHz · V²) at unit
    /// activity.
    ceff_w_per_mhz_v2: f64,
    /// Per-core leakage at nominal voltage and temperature.
    leak_nominal: Watts,
    /// Leakage exponential temperature coefficient per °C.
    leak_temp_coeff: f64,
    /// Nominal temperature for the leakage model.
    tnom: Celsius,
    /// Constant uncore (nest, caches, IO) power per chip.
    uncore: Watts,
}

/// Itemized chip power, exposed so telemetry and tests can check each
/// component (C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Sum of per-core dynamic power.
    pub dynamic: Watts,
    /// Sum of per-core leakage power.
    pub leakage: Watts,
    /// Constant uncore power.
    pub uncore: Watts,
}

impl PowerBreakdown {
    /// Total chip power.
    #[must_use]
    pub fn total(&self) -> Watts {
        self.dynamic + self.leakage + self.uncore
    }
}

impl PowerModel {
    /// POWER7+-calibrated constants: a daxpy core at 4.6 GHz / ~1.21 V
    /// draws ≈ 14 W dynamic + 1.5 W leakage; uncore is 35 W.
    #[must_use]
    pub fn power7_plus() -> Self {
        PowerModel {
            ceff_w_per_mhz_v2: 2.15e-3,
            leak_nominal: Watts::new(1.5),
            leak_temp_coeff: 0.014,
            tnom: Celsius::new(45.0),
            uncore: Watts::new(35.0),
        }
    }

    /// Creates a power model from raw constants.
    ///
    /// # Panics
    ///
    /// Panics if `ceff` is negative.
    #[must_use]
    pub fn new(
        ceff_w_per_mhz_v2: f64,
        leak_nominal: Watts,
        leak_temp_coeff: f64,
        tnom: Celsius,
        uncore: Watts,
    ) -> Self {
        assert!(ceff_w_per_mhz_v2 >= 0.0, "Ceff must be non-negative");
        PowerModel {
            ceff_w_per_mhz_v2,
            leak_nominal,
            leak_temp_coeff,
            tnom,
            uncore,
        }
    }

    /// Power drawn by one core clocked at `f`, supplied `v`, die
    /// temperature `t`, running code with switching activity `activity`
    /// (0 = clock-gated idle, 1 = power-virus).
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1.5]` (SMT-stacked stressmarks
    /// may exceed 1.0 slightly, but nothing should exceed 1.5).
    #[must_use]
    pub fn core_power(&self, f: MegaHz, v: Volts, t: Celsius, activity: f64) -> Watts {
        self.core_power_with_term(f, v, self.leakage_temp_term(t), activity)
    }

    /// [`PowerModel::core_power`] with a precomputed leakage temperature
    /// term (see [`PowerModel::leakage_temp_term`]). The per-tick simulator
    /// computes the term once per socket and shares it across all eight
    /// cores — they sit on one die at one temperature — removing eight
    /// `exp` calls per tick while emitting the same f64 bit patterns.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1.5]` (SMT-stacked stressmarks
    /// may exceed 1.0 slightly, but nothing should exceed 1.5).
    #[must_use]
    #[inline]
    pub fn core_power_with_term(
        &self,
        f: MegaHz,
        v: Volts,
        temp_term: f64,
        activity: f64,
    ) -> Watts {
        assert!(
            (0.0..=1.5).contains(&activity),
            "activity out of [0, 1.5]: {activity}"
        );
        let dynamic = self.ceff_w_per_mhz_v2 * activity * v.get() * v.get() * f.get();
        Watts::new(dynamic) + self.core_leakage_with_term(v, temp_term)
    }

    /// Leakage power of one core at `(v, t)`.
    #[must_use]
    pub fn core_leakage(&self, v: Volts, t: Celsius) -> Watts {
        self.core_leakage_with_term(v, self.leakage_temp_term(t))
    }

    /// The exponential temperature factor of the leakage model at die
    /// temperature `t` — the only transcendental in the leakage path, and
    /// a pure function of `t`, so it can be hoisted and shared across the
    /// cores of a socket within one tick.
    #[must_use]
    #[inline]
    pub fn leakage_temp_term(&self, t: Celsius) -> f64 {
        (self.leak_temp_coeff * (t.get() - self.tnom.get())).exp()
    }

    /// [`PowerModel::core_leakage`] with a precomputed temperature term
    /// (must come from [`PowerModel::leakage_temp_term`] for the same `t`).
    #[must_use]
    #[inline]
    pub fn core_leakage_with_term(&self, v: Volts, temp_term: f64) -> Watts {
        let v_term = v.get() / 1.25;
        Watts::new(self.leak_nominal.get() * v_term * temp_term)
    }

    /// The constant uncore power.
    #[must_use]
    pub fn uncore(&self) -> Watts {
        self.uncore
    }

    /// Total chip power from per-core `(f, v, activity)` triples at die
    /// temperature `t`, itemized.
    pub fn chip_power<I>(&self, cores: I, t: Celsius) -> PowerBreakdown
    where
        I: IntoIterator<Item = (MegaHz, Volts, f64)>,
    {
        let mut dynamic = Watts::ZERO;
        let mut leakage = Watts::ZERO;
        for (f, v, a) in cores {
            let total = self.core_power(f, v, t, a);
            let leak = self.core_leakage(v, t);
            leakage += leak;
            dynamic += total.saturating_sub(leak);
        }
        PowerBreakdown {
            dynamic,
            leakage,
            uncore: self.uncore,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::power7_plus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm() -> PowerModel {
        PowerModel::power7_plus()
    }

    #[test]
    fn eight_daxpy_cores_near_160_watts() {
        let pm = pm();
        let t = Celsius::new(65.0);
        let cores = (0..8).map(|_| (MegaHz::new(4600.0), Volts::new(1.21), 0.95));
        let total = pm.chip_power(cores, t).total();
        assert!(
            total.get() > 140.0 && total.get() < 180.0,
            "daxpy chip power {total} outside the paper's ~160 W"
        );
    }

    #[test]
    fn idle_chip_power_plausible() {
        let pm = pm();
        let t = Celsius::new(42.0);
        let cores = (0..8).map(|_| (MegaHz::new(4600.0), Volts::new(1.24), 0.05));
        let total = pm.chip_power(cores, t).total();
        assert!(
            total.get() > 45.0 && total.get() < 75.0,
            "idle chip power {total} implausible"
        );
    }

    #[test]
    fn power_monotone_in_activity_frequency_voltage() {
        let pm = pm();
        let t = Celsius::new(50.0);
        let base = pm.core_power(MegaHz::new(4000.0), Volts::new(1.2), t, 0.5);
        assert!(pm.core_power(MegaHz::new(4400.0), Volts::new(1.2), t, 0.5) > base);
        assert!(pm.core_power(MegaHz::new(4000.0), Volts::new(1.25), t, 0.5) > base);
        assert!(pm.core_power(MegaHz::new(4000.0), Volts::new(1.2), t, 0.8) > base);
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let pm = pm();
        assert!(
            pm.core_leakage(Volts::new(1.25), Celsius::new(70.0))
                > pm.core_leakage(Volts::new(1.25), Celsius::new(45.0))
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let pm = pm();
        let t = Celsius::new(55.0);
        let cores: Vec<_> = (0..8)
            .map(|_| (MegaHz::new(4500.0), Volts::new(1.22), 0.6))
            .collect();
        let b = pm.chip_power(cores.iter().copied(), t);
        let manual: Watts = cores
            .iter()
            .map(|&(f, v, a)| pm.core_power(f, v, t, a))
            .sum::<Watts>()
            + pm.uncore();
        assert!((b.total().get() - manual.get()).abs() < 1e-9);
    }

    #[test]
    fn zero_activity_leaves_only_leakage() {
        let pm = pm();
        let t = Celsius::new(45.0);
        let p = pm.core_power(MegaHz::new(4600.0), Volts::new(1.25), t, 0.0);
        assert_eq!(p, pm.core_leakage(Volts::new(1.25), t));
    }

    #[test]
    #[should_panic(expected = "activity")]
    fn absurd_activity_rejected() {
        let _ = pm().core_power(
            MegaHz::new(4600.0),
            Volts::new(1.25),
            Celsius::new(45.0),
            2.0,
        );
    }
}
