//! Power-delivery and thermal models for the `power-atm` stack.
//!
//! The paper's dynamic effects all flow through the power-delivery network:
//!
//! * **DC IR drop** — current drawn by the whole chip drops voltage across
//!   the shared delivery path ([`PdnModel`]); this is the `−k′·P̄` term of
//!   the paper's Eq. 1 frequency predictor (≈ −2 MHz per watt).
//! * **di/dt droops** — fast transient events caused by workload activity
//!   swings ([`DroopProcess`]); the ATM loop absorbs the slow part, but a
//!   sharp leading edge can escape the loop's response window and threaten
//!   an aggressively fine-tuned configuration.
//! * **Power and temperature** — [`PowerModel`] computes dynamic + leakage
//!   power from voltage, frequency and activity; [`ThermalModel`] tracks
//!   die temperature (kept below 70 °C in all the paper's runs).
//!
//! # Examples
//!
//! ```
//! use atm_pdn::PdnModel;
//! use atm_units::Watts;
//!
//! let pdn = PdnModel::power7_plus();
//! let idle = pdn.core_voltage(Watts::new(55.0), Watts::new(2.0));
//! let loaded = pdn.core_voltage(Watts::new(160.0), Watts::new(15.0));
//! assert!(loaded < idle, "higher power must drop the delivered voltage");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod didt;
mod power;
mod thermal;
mod vrm;

pub use didt::{DiDtParams, DroopEvent, DroopProcess, LoadStep};
pub use power::{PowerBreakdown, PowerModel};
pub use thermal::ThermalModel;
pub use vrm::{PdnModel, RailTransient};
