//! The voltage regulator and DC delivery-path model.

use atm_units::{Volts, Watts};
use serde::{Deserialize, Serialize};

/// DC model of a processor's power-delivery network: an off-chip VRM with a
/// configurable setpoint, a shared delivery-path resistance across which
/// the *whole chip's* current drops voltage, and a smaller per-core local
/// resistance.
///
/// The shared term makes every core's frequency depend on *total* chip
/// power — the coupling the paper's management scheme exploits: throttling
/// background cores lowers chip power, which raises the delivered voltage
/// and thus the critical core's ATM frequency.
///
/// # Examples
///
/// ```
/// use atm_pdn::PdnModel;
/// use atm_units::Watts;
///
/// let pdn = PdnModel::power7_plus();
/// // At ~160 W the DC drop is ≈ 3–4% of the 1.25 V rail (the paper's
/// // "DC voltage drop can consume 3% of Vdd").
/// let v = pdn.core_voltage(Watts::new(160.0), Watts::new(15.0));
/// let drop_frac = 1.0 - v.get() / 1.25;
/// assert!(drop_frac > 0.025 && drop_frac < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PdnModel {
    setpoint: Volts,
    r_shared_ohm: f64,
    r_local_ohm: f64,
}

impl PdnModel {
    /// The POWER7+-calibrated network: 1.25 V setpoint (the 4.2 GHz
    /// p-state), 0.34 mΩ shared path (≈ −2 MHz/W via the loop), 0.05 mΩ
    /// local per-core path.
    #[must_use]
    pub fn power7_plus() -> Self {
        PdnModel::new(Volts::new(1.25), 3.4e-4, 0.5e-4)
    }

    /// Creates a network model.
    ///
    /// # Panics
    ///
    /// Panics if the setpoint is zero or either resistance is negative.
    #[must_use]
    pub fn new(setpoint: Volts, r_shared_ohm: f64, r_local_ohm: f64) -> Self {
        assert!(setpoint.get() > 0.0, "VRM setpoint must be positive");
        assert!(
            r_shared_ohm >= 0.0,
            "shared resistance must be non-negative"
        );
        assert!(r_local_ohm >= 0.0, "local resistance must be non-negative");
        PdnModel {
            setpoint,
            r_shared_ohm,
            r_local_ohm,
        }
    }

    /// The VRM output setpoint.
    #[must_use]
    pub fn setpoint(&self) -> Volts {
        self.setpoint
    }

    /// Returns a copy with a different VRM setpoint (used by DVFS p-state
    /// changes and by the undervolting policy).
    #[must_use]
    pub fn with_setpoint(&self, setpoint: Volts) -> Self {
        PdnModel::new(setpoint, self.r_shared_ohm, self.r_local_ohm)
    }

    /// The shared delivery-path resistance in ohms.
    #[must_use]
    pub fn r_shared_ohm(&self) -> f64 {
        self.r_shared_ohm
    }

    /// Steady-state voltage delivered to a core, given the chip's total
    /// power and this core's own power.
    ///
    /// Current is approximated as `P/Vset` (the error from using the
    /// setpoint instead of the delivered voltage is second-order in the
    /// drop, well under 0.2%).
    #[must_use]
    pub fn core_voltage(&self, chip_power: Watts, core_power: Watts) -> Volts {
        self.core_voltage_from_shared(self.shared_term(chip_power), core_power)
    }

    /// The shared-path drop term of [`PdnModel::core_voltage`], a pure
    /// function of the chip total. A tick loop that delivers voltage to
    /// every core of a socket evaluates this once and reuses it — the
    /// per-core result is bit-identical to calling
    /// [`PdnModel::core_voltage`] directly, because the underlying
    /// expression is evaluated in the same order either way.
    #[must_use]
    #[inline]
    pub fn shared_term(&self, chip_power: Watts) -> f64 {
        let i_chip = chip_power.get() / self.setpoint.get();
        self.r_shared_ohm * i_chip
    }

    /// Completes [`PdnModel::core_voltage`] from a precomputed
    /// [`PdnModel::shared_term`].
    #[must_use]
    #[inline]
    pub fn core_voltage_from_shared(&self, shared: f64, core_power: Watts) -> Volts {
        let i_core = core_power.get() / self.setpoint.get();
        let drop = shared + self.r_local_ohm * i_core;
        self.setpoint.saturating_sub(Volts::new(drop))
    }

    /// The DC drop component shared by all cores, for telemetry.
    #[must_use]
    pub fn shared_drop(&self, chip_power: Watts) -> Volts {
        Volts::new(self.r_shared_ohm * chip_power.get() / self.setpoint.get())
    }

    /// Sensitivity of the delivered voltage to chip power, in volts per
    /// watt (a negative quantity reported as its magnitude). Used by the
    /// analytical frequency predictor.
    #[must_use]
    pub fn volts_per_watt(&self) -> f64 {
        self.r_shared_ohm / self.setpoint.get()
    }
}

impl Default for PdnModel {
    fn default() -> Self {
        PdnModel::power7_plus()
    }
}

/// A transient disturbance on the VRM output rail, used by fault-injection
/// campaigns to model brownouts and regulator glitches.
///
/// The transient is expressed as a millivolt offset *subtracted* from the
/// delivered DC voltage for as long as it is armed; it composes with the
/// normal IR-drop terms (which are computed from the undisturbed setpoint,
/// as a real chip's current draw would be during a short glitch).
///
/// # Examples
///
/// ```
/// use atm_pdn::RailTransient;
/// use atm_units::Volts;
///
/// let sag = RailTransient::new(40.0);
/// let v = sag.apply(Volts::new(1.25));
/// assert!((v.get() - 1.21).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RailTransient {
    offset_mv: f64,
}

impl RailTransient {
    /// Creates a rail sag of `offset_mv` millivolts.
    ///
    /// # Panics
    ///
    /// Panics if `offset_mv` is negative or not finite.
    #[must_use]
    pub fn new(offset_mv: f64) -> Self {
        assert!(
            offset_mv.is_finite() && offset_mv >= 0.0,
            "rail transient offset must be a non-negative finite millivolt value"
        );
        RailTransient { offset_mv }
    }

    /// The sag magnitude in millivolts.
    #[must_use]
    pub fn offset_mv(&self) -> f64 {
        self.offset_mv
    }

    /// Applies the sag to a delivered voltage, flooring at zero volts.
    #[must_use]
    #[inline]
    pub fn apply(&self, v: Volts) -> Volts {
        v.saturating_sub(Volts::new(self.offset_mv / 1000.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_decreases_with_chip_power() {
        let pdn = PdnModel::power7_plus();
        let mut prev = pdn.core_voltage(Watts::ZERO, Watts::ZERO);
        for p in (20..=200).step_by(20) {
            let v = pdn.core_voltage(Watts::new(f64::from(p)), Watts::new(2.0));
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn zero_power_delivers_setpoint() {
        let pdn = PdnModel::power7_plus();
        assert_eq!(pdn.core_voltage(Watts::ZERO, Watts::ZERO), pdn.setpoint());
    }

    #[test]
    fn local_term_penalizes_hot_core() {
        let pdn = PdnModel::power7_plus();
        let cool = pdn.core_voltage(Watts::new(100.0), Watts::new(2.0));
        let hot = pdn.core_voltage(Watts::new(100.0), Watts::new(18.0));
        assert!(hot < cool);
    }

    #[test]
    fn drop_magnitude_matches_paper() {
        // ~160 W should drop 40–50 mV on the shared path (≈ 3% of Vdd).
        let pdn = PdnModel::power7_plus();
        let drop = pdn.shared_drop(Watts::new(160.0));
        assert!(drop.get() > 0.035 && drop.get() < 0.055, "drop {drop}");
    }

    #[test]
    fn setpoint_change_scales_voltage() {
        let pdn = PdnModel::power7_plus().with_setpoint(Volts::new(1.0));
        assert_eq!(pdn.core_voltage(Watts::ZERO, Watts::ZERO), Volts::new(1.0));
    }

    #[test]
    fn volts_per_watt_matches_finite_difference() {
        let pdn = PdnModel::power7_plus();
        let v1 = pdn.core_voltage(Watts::new(100.0), Watts::ZERO);
        let v2 = pdn.core_voltage(Watts::new(101.0), Watts::ZERO);
        let fd = v1.get() - v2.get();
        assert!((fd - pdn.volts_per_watt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_setpoint_rejected() {
        let _ = PdnModel::new(Volts::ZERO, 1e-4, 1e-5);
    }

    #[test]
    fn rail_transient_subtracts_offset() {
        let sag = RailTransient::new(25.0);
        let v = sag.apply(Volts::new(1.25));
        assert!((v.get() - 1.225).abs() < 1e-12);
    }

    #[test]
    fn rail_transient_floors_at_zero() {
        let sag = RailTransient::new(5000.0);
        assert_eq!(sag.apply(Volts::new(1.25)), Volts::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rail_transient_rejected() {
        let _ = RailTransient::new(-1.0);
    }
}
