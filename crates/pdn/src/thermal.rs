//! First-order die thermal model.

use atm_units::{Celsius, Nanos, Watts};
use serde::{Deserialize, Serialize};

/// A first-order RC thermal model of the die.
///
/// Die temperature relaxes toward `T_ambient + R_th · P` with time constant
/// `tau`. The paper keeps the die below 70 °C in all experiments (reached at
/// ≈ 160 W) and observes that temperature only modestly affects speed; the
/// model exists mainly so leakage and the small delay sensitivity see a
/// realistic temperature trajectory.
///
/// # Examples
///
/// ```
/// use atm_pdn::ThermalModel;
/// use atm_units::{Nanos, Watts};
///
/// let mut th = ThermalModel::power7_plus();
/// th.settle(Watts::new(160.0));
/// assert!((th.temperature().get() - 70.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    ambient: Celsius,
    r_th_deg_per_watt: f64,
    tau_ms: f64,
    temperature: Celsius,
}

impl ThermalModel {
    /// POWER7+-calibrated constants: 40 °C ambient (case), 0.19 °C/W to the
    /// heat sink, 20 ms time constant. 160 W → ≈ 70 °C steady state.
    #[must_use]
    pub fn power7_plus() -> Self {
        ThermalModel::new(Celsius::new(40.0), 0.19, 20.0)
    }

    /// Creates a thermal model initially at ambient.
    ///
    /// # Panics
    ///
    /// Panics if `r_th_deg_per_watt` is negative or `tau_ms` is not
    /// positive.
    #[must_use]
    pub fn new(ambient: Celsius, r_th_deg_per_watt: f64, tau_ms: f64) -> Self {
        assert!(
            r_th_deg_per_watt >= 0.0,
            "thermal resistance must be non-negative"
        );
        assert!(tau_ms > 0.0, "thermal time constant must be positive");
        ThermalModel {
            ambient,
            r_th_deg_per_watt,
            tau_ms,
            temperature: ambient,
        }
    }

    /// The current die temperature.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// The steady-state temperature at chip power `p`.
    #[must_use]
    pub fn steady_state(&self, p: Watts) -> Celsius {
        self.ambient + Celsius::delta(self.r_th_deg_per_watt * p.get())
    }

    /// Advances the model by `dt` at chip power `p`.
    pub fn step(&mut self, p: Watts, dt: Nanos) {
        self.step_with_alpha(p, self.alpha(dt));
    }

    /// The first-order relaxation coefficient for a step of length `dt` —
    /// a pure function of `dt` and the time constant. The simulator's tick
    /// loop computes this once per run (its `dt` never changes mid-run)
    /// and feeds [`ThermalModel::step_with_alpha`], hoisting the `exp`
    /// out of the per-tick path without changing a single bit of the
    /// trajectory.
    #[must_use]
    pub fn alpha(&self, dt: Nanos) -> f64 {
        1.0 - (-dt.to_millis() / self.tau_ms).exp()
    }

    /// [`ThermalModel::step`] with a precomputed relaxation coefficient
    /// (`alpha` must come from [`ThermalModel::alpha`] for the same `dt`).
    pub fn step_with_alpha(&mut self, p: Watts, alpha: f64) {
        let target = self.steady_state(p);
        let next = self.temperature.get() + alpha * (target.get() - self.temperature.get());
        self.temperature = Celsius::new(next);
    }

    /// Jumps directly to the steady state for `p` (used at the start of a
    /// trial so short simulations see representative temperatures).
    pub fn settle(&mut self, p: Watts) {
        self.temperature = self.steady_state(p);
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel::power7_plus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_at_160w_near_70c() {
        let th = ThermalModel::power7_plus();
        let t = th.steady_state(Watts::new(160.0));
        assert!((t.get() - 70.4).abs() < 1.0, "steady state {t}");
    }

    #[test]
    fn starts_at_ambient() {
        assert_eq!(
            ThermalModel::power7_plus().temperature(),
            Celsius::new(40.0)
        );
    }

    #[test]
    fn step_approaches_steady_state_monotonically() {
        let mut th = ThermalModel::power7_plus();
        let p = Watts::new(120.0);
        let target = th.steady_state(p);
        let mut prev = th.temperature();
        // 20 steps of 5 ms = 100 ms = 5 tau.
        for _ in 0..20 {
            th.step(p, Nanos::new(5.0e6));
            assert!(th.temperature() >= prev);
            prev = th.temperature();
        }
        assert!((th.temperature().get() - target.get()).abs() < 0.5);
    }

    #[test]
    fn cooling_works_too() {
        let mut th = ThermalModel::power7_plus();
        th.settle(Watts::new(160.0));
        th.step(Watts::new(50.0), Nanos::new(100.0e6));
        assert!(th.temperature() < Celsius::new(70.0));
    }

    #[test]
    fn settle_matches_steady_state() {
        let mut th = ThermalModel::power7_plus();
        th.settle(Watts::new(100.0));
        assert_eq!(th.temperature(), th.steady_state(Watts::new(100.0)));
    }

    #[test]
    fn tiny_step_barely_moves() {
        let mut th = ThermalModel::power7_plus();
        th.step(Watts::new(160.0), Nanos::new(50.0));
        assert!(th.temperature().get() - 40.0 < 0.01);
    }
}
