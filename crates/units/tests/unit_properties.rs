//! Property tests for the unit newtypes.

use atm_units::{Celsius, CoreId, MegaHz, Millivolts, Nanos, Picos, Volts, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn period_frequency_roundtrip(mhz in 1.0f64..10_000.0) {
        let f = MegaHz::new(mhz);
        let back = f.period().frequency();
        prop_assert!((back.get() - mhz).abs() / mhz < 1e-12);
    }

    #[test]
    fn picos_addition_commutes(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let x = Picos::new(a) + Picos::new(b);
        let y = Picos::new(b) + Picos::new(a);
        prop_assert_eq!(x, y);
    }

    #[test]
    fn picos_sum_matches_fold(values in prop::collection::vec(-1e3f64..1e3, 0..32)) {
        let sum: Picos = values.iter().map(|&v| Picos::new(v)).sum();
        let fold = values.iter().fold(Picos::ZERO, |acc, &v| acc + Picos::new(v));
        prop_assert!((sum.get() - fold.get()).abs() < 1e-9);
    }

    #[test]
    fn gain_over_is_inverse_of_scaling(base in 100.0f64..9000.0, gain in -0.5f64..2.0) {
        let b = MegaHz::new(base);
        let f = b * (1.0 + gain);
        prop_assert!((f.gain_over(b) - gain).abs() < 1e-9);
    }

    #[test]
    fn volts_saturating_sub_never_negative(a in 0.0f64..2.0, b in 0.0f64..3.0) {
        let v = Volts::new(a).saturating_sub(Volts::new(b));
        prop_assert!(v.get() >= 0.0);
        if a >= b {
            prop_assert!((v.get() - (a - b)).abs() < 1e-12);
        }
    }

    #[test]
    fn millivolt_volt_roundtrip(mv in 0.0f64..2000.0) {
        let v = Millivolts::new(mv).to_volts();
        prop_assert!((Millivolts::from(v).get() - mv).abs() < 1e-9);
    }

    #[test]
    fn watts_budget_arithmetic(budget in 0.0f64..300.0, used in 0.0f64..300.0) {
        let left = Watts::new(budget).saturating_sub(Watts::new(used));
        prop_assert!(left.get() >= 0.0);
        prop_assert!(left.get() <= budget + 1e-12);
    }

    #[test]
    fn nanos_picos_conversion(ns in 0.0f64..1e9) {
        let n = Nanos::new(ns);
        prop_assert!((Nanos::from(n.to_picos()).get() - ns).abs() < 1e-6 * ns.max(1.0));
    }

    #[test]
    fn core_id_flat_roundtrip(flat in 0usize..16) {
        let id = CoreId::from_flat_index(flat);
        prop_assert_eq!(id.flat_index(), flat);
        let parsed: CoreId = id.to_string().parse().unwrap();
        prop_assert_eq!(parsed, id);
    }

    #[test]
    fn celsius_delta_addition(base in -50.0f64..150.0, delta in -100.0f64..100.0) {
        prop_assume!(base + delta >= -273.15);
        let t = Celsius::new(base.max(-273.15)) + Celsius::delta(delta);
        prop_assert!((t.get() - (base.max(-273.15) + delta)).abs() < 1e-12);
    }

    #[test]
    fn clamp_is_idempotent(f in 0.0f64..10_000.0, lo in 0.0f64..5000.0, hi in 5000.0f64..10_000.0) {
        let clamped = MegaHz::new(f).clamp(MegaHz::new(lo), MegaHz::new(hi));
        prop_assert_eq!(clamped.clamp(MegaHz::new(lo), MegaHz::new(hi)), clamped);
        prop_assert!(clamped.get() >= lo && clamped.get() <= hi);
    }
}

/// Compile-time check that every unit type is a serde data structure
/// (C-SERDE): serializable and deserializable.
#[test]
fn units_implement_serde() {
    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_serde::<Picos>();
    assert_serde::<Nanos>();
    assert_serde::<MegaHz>();
    assert_serde::<Volts>();
    assert_serde::<Millivolts>();
    assert_serde::<Watts>();
    assert_serde::<Celsius>();
    assert_serde::<CoreId>();
}
