//! Electrical power in watts.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// Electrical power in watts.
///
/// Chip-level power drives the DC IR drop across the shared power-delivery
/// path, which is the dominant dynamic term in the paper's per-core
/// frequency predictor (Eq. 1: each additional watt costs ≈ 2 MHz).
///
/// # Examples
///
/// ```
/// use atm_units::Watts;
///
/// let cores: Vec<Watts> = (0..8).map(|_| Watts::new(15.0)).collect();
/// let chip: Watts = cores.iter().copied().sum::<Watts>() + Watts::new(40.0);
/// assert_eq!(chip, Watts::new(160.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Creates a power value.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative.
    #[must_use]
    pub fn new(w: f64) -> Self {
        crate::debug_check_finite(w, "Watts");
        assert!(w >= 0.0, "power must be non-negative, got {w}");
        Watts(w)
    }

    /// Returns the raw watt count.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Saturating subtraction, clamping at zero. Used when computing the
    /// power envelope left for background jobs, which can be exhausted.
    #[must_use]
    pub fn saturating_sub(self, rhs: Watts) -> Watts {
        Watts((self.0 - rhs.0).max(0.0))
    }

    /// Returns the larger of two powers.
    #[must_use]
    pub fn max(self, other: Watts) -> Watts {
        Watts(self.0.max(other.0))
    }

    /// Returns the smaller of two powers.
    #[must_use]
    pub fn min(self, other: Watts) -> Watts {
        Watts(self.0.min(other.0))
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} W", self.0)
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`Watts::saturating_sub`] for budget arithmetic.
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts::new(self.0 * rhs)
    }
}

impl Div<f64> for Watts {
    type Output = Watts;
    fn div(self, rhs: f64) -> Watts {
        Watts::new(self.0 / rhs)
    }
}

impl Div<Watts> for Watts {
    /// Ratio of two powers (dimensionless).
    type Output = f64;
    fn div(self, rhs: Watts) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts(iter.map(|w| w.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let p = Watts::new(100.0) + Watts::new(60.0);
        assert_eq!(p, Watts::new(160.0));
        assert_eq!(p - Watts::new(60.0), Watts::new(100.0));
        assert_eq!(p * 0.5, Watts::new(80.0));
        assert_eq!(p / 2.0, Watts::new(80.0));
        assert_eq!(p / Watts::new(40.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_rejected() {
        let _ = Watts::new(-1.0);
    }

    #[test]
    fn budget_saturation() {
        let budget = Watts::new(50.0);
        assert_eq!(budget.saturating_sub(Watts::new(80.0)), Watts::ZERO);
        assert_eq!(budget.saturating_sub(Watts::new(20.0)), Watts::new(30.0));
    }

    #[test]
    fn sum_and_display() {
        let total: Watts = (0..4).map(|_| Watts::new(2.5)).sum();
        assert_eq!(total, Watts::new(10.0));
        assert_eq!(total.to_string(), "10.0 W");
    }
}
