//! Clock frequency in megahertz.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::time::Picos;

/// A clock frequency in megahertz.
///
/// The paper reports all frequencies in MHz (e.g. the 4200 MHz static-margin
/// p-state, or the ~5000 MHz fine-tuned idle limits), so MHz is the canonical
/// unit across the stack.
///
/// # Examples
///
/// ```
/// use atm_units::MegaHz;
///
/// let base = MegaHz::new(4200.0);
/// let boosted = MegaHz::new(5040.0);
/// assert!((boosted.gain_over(base) - 0.20).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct MegaHz(f64);

impl MegaHz {
    /// The zero frequency (a fully gated clock).
    pub const ZERO: MegaHz = MegaHz(0.0);

    /// Creates a frequency in const context (no validity checks).
    #[must_use]
    pub const fn new_const(mhz: f64) -> Self {
        MegaHz(mhz)
    }

    /// Creates a frequency from a megahertz count.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `mhz` is not finite; panics always if
    /// `mhz` is negative — a clock cannot run backwards.
    #[must_use]
    pub fn new(mhz: f64) -> Self {
        crate::debug_check_finite(mhz, "MegaHz");
        assert!(mhz >= 0.0, "frequency must be non-negative, got {mhz}");
        MegaHz(mhz)
    }

    /// Returns the raw megahertz count.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns the clock period.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[must_use]
    #[inline]
    pub fn period(self) -> Picos {
        assert!(self.0 > 0.0, "cannot take period of zero frequency");
        Picos::new(1.0e6 / self.0)
    }

    /// Fractional gain of `self` over a `baseline` frequency.
    ///
    /// `MegaHz::new(4620.0).gain_over(MegaHz::new(4200.0))` is `0.10`.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is zero.
    #[must_use]
    pub fn gain_over(self, baseline: MegaHz) -> f64 {
        assert!(baseline.0 > 0.0, "baseline frequency must be positive");
        self.0 / baseline.0 - 1.0
    }

    /// Returns the larger of two frequencies.
    #[must_use]
    pub fn max(self, other: MegaHz) -> MegaHz {
        MegaHz(self.0.max(other.0))
    }

    /// Returns the smaller of two frequencies.
    #[must_use]
    pub fn min(self, other: MegaHz) -> MegaHz {
        MegaHz(self.0.min(other.0))
    }

    /// Clamps the frequency into `[lo, hi]`.
    #[must_use]
    pub fn clamp(self, lo: MegaHz, hi: MegaHz) -> MegaHz {
        MegaHz(self.0.clamp(lo.0, hi.0))
    }
}

impl fmt::Display for MegaHz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} MHz", self.0)
    }
}

impl Add for MegaHz {
    type Output = MegaHz;
    fn add(self, rhs: MegaHz) -> MegaHz {
        MegaHz(self.0 + rhs.0)
    }
}

impl AddAssign for MegaHz {
    fn add_assign(&mut self, rhs: MegaHz) {
        self.0 += rhs.0;
    }
}

impl Sub for MegaHz {
    /// Difference of two frequencies.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative (use [`MegaHz::gain_over`] or
    /// compare first when the sign is unknown).
    type Output = MegaHz;
    fn sub(self, rhs: MegaHz) -> MegaHz {
        MegaHz::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for MegaHz {
    type Output = MegaHz;
    fn mul(self, rhs: f64) -> MegaHz {
        MegaHz::new(self.0 * rhs)
    }
}

impl Div<f64> for MegaHz {
    type Output = MegaHz;
    fn div(self, rhs: f64) -> MegaHz {
        MegaHz::new(self.0 / rhs)
    }
}

impl Div<MegaHz> for MegaHz {
    /// Ratio of two frequencies (dimensionless).
    type Output = f64;
    fn div(self, rhs: MegaHz) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for MegaHz {
    fn sum<I: Iterator<Item = MegaHz>>(iter: I) -> MegaHz {
        MegaHz(iter.map(|f| f.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_roundtrip() {
        let f = MegaHz::new(5000.0);
        assert!((f.period().frequency().get() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn gain() {
        assert!((MegaHz::new(4620.0).gain_over(MegaHz::new(4200.0)) - 0.10).abs() < 1e-12);
        assert!(MegaHz::new(4000.0).gain_over(MegaHz::new(4200.0)) < 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_frequency_rejected() {
        let _ = MegaHz::new(-1.0);
    }

    #[test]
    #[should_panic]
    fn subtraction_underflow_panics() {
        let _ = MegaHz::new(100.0) - MegaHz::new(200.0);
    }

    #[test]
    fn ordering_and_clamp() {
        let lo = MegaHz::new(2100.0);
        let hi = MegaHz::new(4200.0);
        assert_eq!(MegaHz::new(5000.0).clamp(lo, hi), hi);
        assert_eq!(MegaHz::new(1000.0).clamp(lo, hi), lo);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
    }

    #[test]
    fn averaging_with_sum() {
        let fs = [4200.0, 4600.0, 5000.0].map(MegaHz::new);
        let avg = fs.iter().copied().sum::<MegaHz>() / fs.len() as f64;
        assert!((avg.get() - 4600.0).abs() < 1e-9);
    }

    #[test]
    fn display() {
        assert_eq!(MegaHz::new(4650.4).to_string(), "4650 MHz");
    }
}
