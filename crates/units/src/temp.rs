//! Die temperature in degrees Celsius.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// A die temperature in degrees Celsius.
///
/// The paper keeps the die under 70 °C in all experiments and notes that
/// speed is only modestly affected by temperature; the stack models a small
/// delay sensitivity plus leakage dependence.
///
/// # Examples
///
/// ```
/// use atm_units::Celsius;
///
/// let ambient = Celsius::new(40.0);
/// let loaded = ambient + Celsius::delta(30.0);
/// assert_eq!(loaded, Celsius::new(70.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Celsius(f64);

impl Celsius {
    /// Creates an absolute temperature.
    ///
    /// # Panics
    ///
    /// Panics if below absolute zero (−273.15 °C).
    #[must_use]
    pub fn new(deg: f64) -> Self {
        crate::debug_check_finite(deg, "Celsius");
        assert!(deg >= -273.15, "temperature below absolute zero: {deg}");
        Celsius(deg)
    }

    /// Creates a temperature *difference* of `deg` degrees.
    ///
    /// Semantically distinct from an absolute temperature, but represented
    /// with the same unit; differences may be negative.
    #[must_use]
    pub fn delta(deg: f64) -> Self {
        crate::debug_check_finite(deg, "Celsius delta");
        Celsius(deg)
    }

    /// Returns the raw degree count.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns the larger of two temperatures.
    #[must_use]
    pub fn max(self, other: Celsius) -> Celsius {
        Celsius(self.0.max(other.0))
    }

    /// Returns the smaller of two temperatures.
    #[must_use]
    pub fn min(self, other: Celsius) -> Celsius {
        Celsius(self.0.min(other.0))
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} °C", self.0)
    }
}

impl Add for Celsius {
    type Output = Celsius;
    fn add(self, rhs: Celsius) -> Celsius {
        Celsius(self.0 + rhs.0)
    }
}

impl Sub for Celsius {
    type Output = Celsius;
    fn sub(self, rhs: Celsius) -> Celsius {
        Celsius(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_delta() {
        assert_eq!(
            Celsius::new(40.0) + Celsius::delta(30.0),
            Celsius::new(70.0)
        );
        assert_eq!(
            Celsius::new(70.0) - Celsius::new(40.0),
            Celsius::delta(30.0)
        );
    }

    #[test]
    #[should_panic(expected = "absolute zero")]
    fn below_absolute_zero_rejected() {
        let _ = Celsius::new(-300.0);
    }

    #[test]
    fn negative_delta_allowed() {
        assert_eq!(Celsius::delta(-5.0).get(), -5.0);
    }

    #[test]
    fn display() {
        assert_eq!(Celsius::new(69.95).to_string(), "70.0 °C");
    }
}
