//! The unified error type of the `power-atm` stack.

use std::error::Error;
use std::fmt;

/// The error type shared by every fallible public API of the stack.
///
/// Earlier revisions signalled misuse through `Option` returns and
/// panics; `AtmError` replaces both so callers can route failures through
/// `?` instead of `unwrap()` chains.
///
/// # Examples
///
/// ```
/// use atm_units::AtmError;
///
/// let err = AtmError::unknown_workload("not-a-benchmark");
/// assert!(err.to_string().contains("not-a-benchmark"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AtmError {
    /// A workload name was not found in the calibrated catalog.
    UnknownWorkload {
        /// The name that was looked up.
        name: String,
    },
    /// A configuration value (or combination of values) is invalid.
    InvalidConfig {
        /// The field or concept that failed validation.
        what: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A serialized telemetry snapshot (or similar text form) failed to
    /// parse.
    Parse {
        /// One-based line number of the offending input line (zero when
        /// the problem is not tied to a specific line).
        line: usize,
        /// Why the input was rejected.
        reason: String,
    },
}

impl AtmError {
    /// An [`AtmError::UnknownWorkload`] for `name`.
    #[must_use]
    pub fn unknown_workload(name: impl Into<String>) -> Self {
        AtmError::UnknownWorkload { name: name.into() }
    }

    /// An [`AtmError::InvalidConfig`] for field `what` rejected for
    /// `reason`.
    #[must_use]
    pub fn invalid_config(what: impl Into<String>, reason: impl Into<String>) -> Self {
        AtmError::InvalidConfig {
            what: what.into(),
            reason: reason.into(),
        }
    }

    /// An [`AtmError::Parse`] at `line` (one-based; zero when unknown).
    #[must_use]
    pub fn parse(line: usize, reason: impl Into<String>) -> Self {
        AtmError::Parse {
            line,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for AtmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtmError::UnknownWorkload { name } => {
                write!(
                    f,
                    "unknown workload {name:?} (not in the calibrated catalog)"
                )
            }
            AtmError::InvalidConfig { what, reason } => {
                write!(f, "invalid configuration: {what}: {reason}")
            }
            AtmError::Parse { line, reason } => {
                if *line == 0 {
                    write!(f, "parse error: {reason}")
                } else {
                    write!(f, "parse error at line {line}: {reason}")
                }
            }
        }
    }
}

impl Error for AtmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        assert_eq!(
            AtmError::unknown_workload("ray").to_string(),
            "unknown workload \"ray\" (not in the calibrated catalog)"
        );
        assert_eq!(
            AtmError::invalid_config("repeats", "must be at least 1").to_string(),
            "invalid configuration: repeats: must be at least 1"
        );
        assert_eq!(
            AtmError::parse(3, "bad counter line").to_string(),
            "parse error at line 3: bad counter line"
        );
        assert_eq!(
            AtmError::parse(0, "empty input").to_string(),
            "parse error: empty input"
        );
    }

    #[test]
    fn is_a_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<AtmError>();
    }
}
