//! Strongly-typed physical units and identifiers shared by the `power-atm`
//! simulation stack.
//!
//! The crate provides thin `f64`-backed newtypes ([`Picos`], [`MegaHz`],
//! [`Volts`], [`Watts`], [`Celsius`]) with the arithmetic that is physically
//! meaningful for each quantity, plus the chip topology identifiers
//! ([`CoreId`], [`ProcId`]) used throughout the stack.
//!
//! Newtypes keep quantities from being confused at compile time
//! (C-NEWTYPE): a function that expects a clock period in picoseconds cannot
//! accidentally be handed a voltage.
//!
//! # Examples
//!
//! ```
//! use atm_units::{MegaHz, Picos};
//!
//! let f = MegaHz::new(4200.0);
//! let period = f.period();
//! assert!((period.get() - 238.095).abs() < 1e-3);
//! assert!((period.frequency().get() - 4200.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod freq;
mod ids;
mod power;
mod temp;
mod time;
mod volt;

pub use error::AtmError;
pub use freq::MegaHz;
pub use ids::{CoreId, ParseCoreIdError, ProcId, SocketIter, CORES_PER_PROC, NUM_PROCS};
pub use power::Watts;
pub use temp::Celsius;
pub use time::{Nanos, Picos};
pub use volt::{Millivolts, Volts};

/// Asserts (in debug builds) that a floating-point quantity is finite.
///
/// All unit constructors funnel through this check so that NaNs and
/// infinities are caught at the point of creation rather than deep inside
/// the simulation.
#[inline]
pub(crate) fn debug_check_finite(value: f64, what: &str) {
    debug_assert!(value.is_finite(), "{what} must be finite, got {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Picos>();
        assert_send_sync::<Nanos>();
        assert_send_sync::<MegaHz>();
        assert_send_sync::<Volts>();
        assert_send_sync::<Millivolts>();
        assert_send_sync::<Watts>();
        assert_send_sync::<Celsius>();
        assert_send_sync::<CoreId>();
        assert_send_sync::<ProcId>();
    }
}
