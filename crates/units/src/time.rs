//! Time quantities: [`Picos`] and [`Nanos`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::freq::MegaHz;

/// A time interval in picoseconds.
///
/// Picoseconds are the natural resolution for pipeline timing: a 4.2 GHz
/// clock period is ~238 ps, and CPM inverter steps are a handful of
/// picoseconds each.
///
/// # Examples
///
/// ```
/// use atm_units::Picos;
///
/// let a = Picos::new(100.0);
/// let b = Picos::new(38.0);
/// assert_eq!((a + b).get(), 138.0);
/// assert!(a > b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Picos(f64);

impl Picos {
    /// The zero interval.
    pub const ZERO: Picos = Picos(0.0);

    /// Creates a time interval in const context (no finiteness check).
    #[must_use]
    pub const fn new_const(ps: f64) -> Self {
        Picos(ps)
    }

    /// Creates a time interval from a picosecond count.
    ///
    /// Negative values are allowed: timing *margins* (slack) can be negative
    /// when a path misses its cycle.
    #[must_use]
    pub fn new(ps: f64) -> Self {
        crate::debug_check_finite(ps, "Picos");
        Picos(ps)
    }

    /// Returns the raw picosecond count.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Converts this interval, interpreted as a clock period, to a frequency.
    ///
    /// # Panics
    ///
    /// Panics if the interval is not strictly positive.
    #[must_use]
    pub fn frequency(self) -> MegaHz {
        assert!(
            self.0 > 0.0,
            "cannot take frequency of non-positive period {self}"
        );
        MegaHz::new(1.0e6 / self.0)
    }

    /// Returns the larger of two intervals.
    #[must_use]
    pub fn max(self, other: Picos) -> Picos {
        Picos(self.0.max(other.0))
    }

    /// Returns the smaller of two intervals.
    #[must_use]
    pub fn min(self, other: Picos) -> Picos {
        Picos(self.0.min(other.0))
    }

    /// Clamps the interval into `[lo, hi]`.
    #[must_use]
    pub fn clamp(self, lo: Picos, hi: Picos) -> Picos {
        Picos(self.0.clamp(lo.0, hi.0))
    }

    /// True if the interval is negative (a violated margin).
    #[must_use]
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ps", self.0)
    }
}

impl Add for Picos {
    type Output = Picos;
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sub for Picos {
    type Output = Picos;
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl SubAssign for Picos {
    fn sub_assign(&mut self, rhs: Picos) {
        self.0 -= rhs.0;
    }
}

impl Neg for Picos {
    type Output = Picos;
    fn neg(self) -> Picos {
        Picos(-self.0)
    }
}

impl Mul<f64> for Picos {
    type Output = Picos;
    fn mul(self, rhs: f64) -> Picos {
        Picos(self.0 * rhs)
    }
}

impl Mul<Picos> for f64 {
    type Output = Picos;
    fn mul(self, rhs: Picos) -> Picos {
        Picos(self * rhs.0)
    }
}

impl Div<f64> for Picos {
    type Output = Picos;
    fn div(self, rhs: f64) -> Picos {
        Picos(self.0 / rhs)
    }
}

impl Div<Picos> for Picos {
    /// Ratio of two intervals (dimensionless).
    type Output = f64;
    fn div(self, rhs: Picos) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Picos {
    fn sum<I: Iterator<Item = Picos>>(iter: I) -> Picos {
        Picos(iter.map(|p| p.0).sum())
    }
}

/// A time interval in nanoseconds, used for control-loop response times and
/// simulation tick lengths.
///
/// # Examples
///
/// ```
/// use atm_units::{Nanos, Picos};
///
/// let tick = Nanos::new(2.0);
/// assert_eq!(tick.to_picos(), Picos::new(2000.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Nanos(f64);

impl Nanos {
    /// The zero interval.
    pub const ZERO: Nanos = Nanos(0.0);

    /// Creates a time interval from a nanosecond count.
    #[must_use]
    pub fn new(ns: f64) -> Self {
        crate::debug_check_finite(ns, "Nanos");
        Nanos(ns)
    }

    /// Returns the raw nanosecond count.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Converts to picoseconds.
    #[must_use]
    pub fn to_picos(self) -> Picos {
        Picos::new(self.0 * 1000.0)
    }

    /// Converts to milliseconds.
    #[must_use]
    pub fn to_millis(self) -> f64 {
        self.0 * 1e-6
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ns", self.0)
    }
}

impl From<Picos> for Nanos {
    fn from(p: Picos) -> Nanos {
        Nanos::new(p.get() / 1000.0)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Mul<f64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: f64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<Nanos> for Nanos {
    type Output = f64;
    fn div(self, rhs: Nanos) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_frequency_roundtrip() {
        let f = Picos::new(238.095_238).frequency();
        assert!((f.get() - 4200.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "non-positive period")]
    fn frequency_of_zero_panics() {
        let _ = Picos::ZERO.frequency();
    }

    #[test]
    fn arithmetic() {
        let a = Picos::new(10.0);
        let b = Picos::new(4.0);
        assert_eq!((a - b).get(), 6.0);
        assert_eq!((a * 2.0).get(), 20.0);
        assert_eq!((2.0 * a).get(), 20.0);
        assert_eq!((a / 2.0).get(), 5.0);
        assert_eq!(a / b, 2.5);
        assert_eq!((-a).get(), -10.0);
        let mut c = a;
        c += b;
        assert_eq!(c.get(), 14.0);
        c -= b;
        assert_eq!(c.get(), 10.0);
    }

    #[test]
    fn min_max_clamp() {
        let a = Picos::new(10.0);
        let b = Picos::new(4.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(Picos::new(20.0).clamp(b, a), a);
        assert_eq!(Picos::new(1.0).clamp(b, a), b);
    }

    #[test]
    fn negative_margin() {
        assert!(Picos::new(-1.0).is_negative());
        assert!(!Picos::ZERO.is_negative());
    }

    #[test]
    fn sum_over_iterator() {
        let total: Picos = (1..=4).map(|i| Picos::new(f64::from(i))).sum();
        assert_eq!(total.get(), 10.0);
    }

    #[test]
    fn nanos_conversions() {
        let n = Nanos::new(1.5);
        assert_eq!(n.to_picos().get(), 1500.0);
        assert_eq!(Nanos::from(Picos::new(2500.0)).get(), 2.5);
        assert!((Nanos::new(32_000_000.0).to_millis() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Picos::new(1.234).to_string(), "1.23 ps");
        assert_eq!(Nanos::new(2.0).to_string(), "2.00 ns");
    }
}
