//! Chip topology identifiers: processors and cores.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Number of processor sockets in the modeled server (two-socket POWER7+).
pub const NUM_PROCS: usize = 2;

/// Number of cores per processor (eight out-of-order cores).
pub const CORES_PER_PROC: usize = 8;

/// Identifies one of the two processor sockets.
///
/// # Examples
///
/// ```
/// use atm_units::ProcId;
///
/// let p = ProcId::new(1);
/// assert_eq!(p.to_string(), "P1");
/// assert_eq!(ProcId::all().count(), 2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProcId(u8);

impl ProcId {
    /// Creates a processor identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_PROCS`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(index < NUM_PROCS, "processor index {index} out of range");
        ProcId(index as u8)
    }

    /// Returns the socket index (0-based).
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Iterates over all processor sockets in index order.
    pub fn all() -> impl Iterator<Item = ProcId> {
        (0..NUM_PROCS).map(ProcId::new)
    }

    /// Iterates over the cores of this processor in index order.
    pub fn cores(self) -> impl Iterator<Item = CoreId> {
        (0..CORES_PER_PROC).map(move |c| CoreId::new(self.index(), c))
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a physical core as a ⟨processor, core⟩ pair, printed in the
/// paper's `P0C0` notation.
///
/// # Examples
///
/// ```
/// use atm_units::CoreId;
///
/// let c: CoreId = "P1C3".parse()?;
/// assert_eq!(c.proc_id().index(), 1);
/// assert_eq!(c.core_index(), 3);
/// assert_eq!(c.to_string(), "P1C3");
/// # Ok::<(), atm_units::ParseCoreIdError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CoreId {
    proc: u8,
    core: u8,
}

impl CoreId {
    /// Creates a core identifier.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range for the two-socket,
    /// eight-core-per-socket topology.
    #[must_use]
    pub fn new(proc: usize, core: usize) -> Self {
        assert!(proc < NUM_PROCS, "processor index {proc} out of range");
        assert!(core < CORES_PER_PROC, "core index {core} out of range");
        CoreId {
            proc: proc as u8,
            core: core as u8,
        }
    }

    /// The socket this core belongs to.
    #[must_use]
    pub fn proc_id(self) -> ProcId {
        ProcId(self.proc)
    }

    /// The core index within its socket (0-based).
    #[must_use]
    pub fn core_index(self) -> usize {
        usize::from(self.core)
    }

    /// A dense index over the whole system in `(proc, core)` order,
    /// `0..NUM_PROCS*CORES_PER_PROC`. Useful for flat per-core arrays.
    #[must_use]
    pub fn flat_index(self) -> usize {
        usize::from(self.proc) * CORES_PER_PROC + usize::from(self.core)
    }

    /// The inverse of [`CoreId::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics if `flat >= NUM_PROCS * CORES_PER_PROC`.
    #[must_use]
    pub fn from_flat_index(flat: usize) -> Self {
        CoreId::new(flat / CORES_PER_PROC, flat % CORES_PER_PROC)
    }

    /// Iterates over every core in the system in `(proc, core)` order.
    #[must_use]
    pub fn all() -> SocketIter {
        SocketIter { next: 0 }
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}C{}", self.proc, self.core)
    }
}

/// Iterator over every [`CoreId`] in the system, produced by
/// [`CoreId::all`].
#[derive(Debug, Clone)]
pub struct SocketIter {
    next: usize,
}

impl Iterator for SocketIter {
    type Item = CoreId;

    fn next(&mut self) -> Option<CoreId> {
        if self.next >= NUM_PROCS * CORES_PER_PROC {
            return None;
        }
        let id = CoreId::from_flat_index(self.next);
        self.next += 1;
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = NUM_PROCS * CORES_PER_PROC - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for SocketIter {}

/// Error returned when parsing a [`CoreId`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCoreIdError {
    input: String,
}

impl fmt::Display for ParseCoreIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid core id `{}`: expected `P<proc>C<core>` with proc < {NUM_PROCS} and core < {CORES_PER_PROC}",
            self.input
        )
    }
}

impl std::error::Error for ParseCoreIdError {}

impl FromStr for CoreId {
    type Err = ParseCoreIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseCoreIdError {
            input: s.to_owned(),
        };
        let rest = s.strip_prefix('P').ok_or_else(err)?;
        let (proc_str, core_str) = rest.split_once('C').ok_or_else(err)?;
        let proc: usize = proc_str.parse().map_err(|_| err())?;
        let core: usize = core_str.parse().map_err(|_| err())?;
        if proc >= NUM_PROCS || core >= CORES_PER_PROC {
            return Err(err());
        }
        Ok(CoreId::new(proc, core))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_roundtrip() {
        for id in CoreId::all() {
            assert_eq!(CoreId::from_flat_index(id.flat_index()), id);
        }
    }

    #[test]
    fn all_yields_sixteen_cores_in_order() {
        let ids: Vec<CoreId> = CoreId::all().collect();
        assert_eq!(ids.len(), 16);
        assert_eq!(ids[0].to_string(), "P0C0");
        assert_eq!(ids[7].to_string(), "P0C7");
        assert_eq!(ids[8].to_string(), "P1C0");
        assert_eq!(ids[15].to_string(), "P1C7");
        assert_eq!(CoreId::all().len(), 16);
    }

    #[test]
    fn parse_roundtrip() {
        for id in CoreId::all() {
            let parsed: CoreId = id.to_string().parse().unwrap();
            assert_eq!(parsed, id);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<CoreId>().is_err());
        assert!("P0".parse::<CoreId>().is_err());
        assert!("C0".parse::<CoreId>().is_err());
        assert!("P2C0".parse::<CoreId>().is_err());
        assert!("P0C8".parse::<CoreId>().is_err());
        assert!("P-1C0".parse::<CoreId>().is_err());
        assert!("PXCY".parse::<CoreId>().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range_core() {
        let _ = CoreId::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range_proc() {
        let _ = CoreId::new(2, 0);
    }

    #[test]
    fn proc_cores_iterates_socket() {
        let cores: Vec<CoreId> = ProcId::new(1).cores().collect();
        assert_eq!(cores.len(), CORES_PER_PROC);
        assert!(cores.iter().all(|c| c.proc_id() == ProcId::new(1)));
    }

    #[test]
    fn ordering_is_proc_major() {
        assert!(CoreId::new(0, 7) < CoreId::new(1, 0));
        assert!(CoreId::new(0, 1) < CoreId::new(0, 2));
    }
}
