//! Supply-voltage quantities: [`Volts`] and [`Millivolts`].

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A supply voltage in volts.
///
/// The POWER7+ 4.2 GHz p-state runs at 1.25 V; IR drop and di/dt droops
/// subtract tens of millivolts from what the VRM supplies.
///
/// # Examples
///
/// ```
/// use atm_units::{Millivolts, Volts};
///
/// let vrm = Volts::new(1.25);
/// let delivered = vrm - Millivolts::new(37.5).to_volts();
/// assert!((delivered.get() - 1.2125).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Volts(f64);

impl Volts {
    /// The zero voltage.
    pub const ZERO: Volts = Volts(0.0);

    /// Creates a voltage in const context (no validity checks).
    #[must_use]
    pub const fn new_const(v: f64) -> Self {
        Volts(v)
    }

    /// Creates a voltage.
    ///
    /// Negative voltages are rejected: the stack models a single positive
    /// supply rail.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative.
    #[must_use]
    pub fn new(v: f64) -> Self {
        crate::debug_check_finite(v, "Volts");
        assert!(v >= 0.0, "voltage must be non-negative, got {v}");
        Volts(v)
    }

    /// Returns the raw volt count.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Converts to millivolts.
    #[must_use]
    pub fn to_millivolts(self) -> Millivolts {
        Millivolts::new(self.0 * 1000.0)
    }

    /// Saturating subtraction: clamps at zero instead of panicking, for
    /// droop arithmetic where an extreme transient could notionally exceed
    /// the rail.
    #[must_use]
    pub fn saturating_sub(self, rhs: Volts) -> Volts {
        Volts((self.0 - rhs.0).max(0.0))
    }

    /// Returns the larger of two voltages.
    #[must_use]
    pub fn max(self, other: Volts) -> Volts {
        Volts(self.0.max(other.0))
    }

    /// Returns the smaller of two voltages.
    #[must_use]
    pub fn min(self, other: Volts) -> Volts {
        Volts(self.0.min(other.0))
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} V", self.0)
    }
}

impl Add for Volts {
    type Output = Volts;
    fn add(self, rhs: Volts) -> Volts {
        Volts(self.0 + rhs.0)
    }
}

impl AddAssign for Volts {
    fn add_assign(&mut self, rhs: Volts) {
        self.0 += rhs.0;
    }
}

impl Sub for Volts {
    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`Volts::saturating_sub`] when transients may exceed the rail.
    type Output = Volts;
    fn sub(self, rhs: Volts) -> Volts {
        Volts::new(self.0 - rhs.0)
    }
}

impl SubAssign for Volts {
    fn sub_assign(&mut self, rhs: Volts) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Volts {
    type Output = Volts;
    fn mul(self, rhs: f64) -> Volts {
        Volts::new(self.0 * rhs)
    }
}

impl Div<f64> for Volts {
    type Output = Volts;
    fn div(self, rhs: f64) -> Volts {
        Volts::new(self.0 / rhs)
    }
}

impl Div<Volts> for Volts {
    /// Ratio of two voltages (dimensionless).
    type Output = f64;
    fn div(self, rhs: Volts) -> f64 {
        self.0 / rhs.0
    }
}

/// A voltage difference in millivolts, used for droop magnitudes and CPM
/// step equivalents (one CPM step ≈ 20–60 mV of supply variation).
///
/// # Examples
///
/// ```
/// use atm_units::Millivolts;
///
/// let droop = Millivolts::new(37.5);
/// assert!((droop.to_volts().get() - 0.0375).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Millivolts(f64);

impl Millivolts {
    /// The zero difference.
    pub const ZERO: Millivolts = Millivolts(0.0);

    /// Creates a voltage difference (may be negative for overshoot).
    #[must_use]
    pub fn new(mv: f64) -> Self {
        crate::debug_check_finite(mv, "Millivolts");
        Millivolts(mv)
    }

    /// Returns the raw millivolt count.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Converts to volts.
    ///
    /// # Panics
    ///
    /// Panics if the difference is negative (a negative difference has no
    /// meaning as an absolute rail voltage).
    #[must_use]
    pub fn to_volts(self) -> Volts {
        Volts::new(self.0 / 1000.0)
    }
}

impl fmt::Display for Millivolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} mV", self.0)
    }
}

impl From<Volts> for Millivolts {
    fn from(v: Volts) -> Millivolts {
        Millivolts(v.get() * 1000.0)
    }
}

impl Add for Millivolts {
    type Output = Millivolts;
    fn add(self, rhs: Millivolts) -> Millivolts {
        Millivolts(self.0 + rhs.0)
    }
}

impl Sub for Millivolts {
    type Output = Millivolts;
    fn sub(self, rhs: Millivolts) -> Millivolts {
        Millivolts(self.0 - rhs.0)
    }
}

impl Mul<f64> for Millivolts {
    type Output = Millivolts;
    fn mul(self, rhs: f64) -> Millivolts {
        Millivolts(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Volts::new(1.25).to_millivolts().get(), 1250.0);
        assert_eq!(Millivolts::from(Volts::new(0.05)).get(), 50.0);
        assert!((Millivolts::new(40.0).to_volts().get() - 0.04).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_volts_rejected() {
        let _ = Volts::new(-0.1);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Volts::new(0.1).saturating_sub(Volts::new(0.5)), Volts::ZERO);
        assert_eq!(
            Volts::new(0.5).saturating_sub(Volts::new(0.1)),
            Volts::new(0.4)
        );
    }

    #[test]
    fn arithmetic() {
        let v = Volts::new(1.0) + Volts::new(0.25);
        assert_eq!(v, Volts::new(1.25));
        assert_eq!(v * 2.0, Volts::new(2.5));
        assert_eq!(v / 1.25, Volts::new(1.0));
        assert_eq!(v / Volts::new(0.625), 2.0);
        let mut w = v;
        w -= Volts::new(0.25);
        assert_eq!(w, Volts::new(1.0));
    }

    #[test]
    fn millivolts_can_be_negative() {
        let overshoot = Millivolts::new(-5.0);
        assert_eq!(overshoot.get(), -5.0);
        assert_eq!((overshoot + Millivolts::new(10.0)).get(), 5.0);
    }

    #[test]
    fn display() {
        assert_eq!(Volts::new(1.25).to_string(), "1.2500 V");
        assert_eq!(Millivolts::new(37.54).to_string(), "37.5 mV");
    }
}
