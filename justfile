# Common development tasks. `just ci` is the gate PRs must pass.

# Formatting + release build (incl. examples and benches) + tests +
# bench smoke + warning-free workspace clippy over all targets +
# warning-free rustdoc (mirrors ci.sh).
ci:
    cargo fmt --check
    cargo build --release
    cargo build --release --examples
    cargo build --release --benches
    cargo test -q
    cargo bench -p atm-bench --bench simperf -- --test
    cargo clippy --workspace --all-targets -- -D warnings
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
    just chaos
    just fleet
    just adapt
    just capping
    just recover

# Fault-injection sweep: every standard plan (droop-storm,
# sensor-chaos, actuator-flap) replayed under three seeds. Each run
# asserts its own report coherence; reports are pure functions of
# (plan, seed), so output drift is a regression.
chaos:
    cargo run --release --example fault_campaign 42 3 4
    cargo run --release --example fault_campaign 7 3 4
    cargo run --release --example fault_campaign 1234 3 4

# Fleet determinism smoke: a small sharded fleet under two seeds, each
# run serially and on four workers and byte-compared (the example
# asserts identity, conservation, and drain discipline itself).
fleet:
    cargo run --release --example fleet 42
    cargo run --release --example fleet 7

# Drifting-lot adaptation smoke: two seeds of conservative deployments
# on aging silicon with the recharacterization loop closed. Each run
# asserts estimator convergence, SLO safety through re-tighten episodes,
# and serial ≡ 4-worker byte identity itself.
adapt:
    cargo run --release --example adapt 42
    cargo run --release --example adapt 7

# Power-capping smoke: two seeds through a brownout, a price curve and
# a budgeted fleet. Each run asserts the regulator's laws (no release
# while over budget, bounded integral, supervisor precedence), energy
# conservation, and serial ≡ 4-worker byte identity itself.
capping:
    cargo run --release --example capping 42
    cargo run --release --example capping 7

# Recovery smoke: a chip hard-failed mid-run under two seeds with the
# failover ladder armed. The example asserts exactly-once accounting
# with retries, SLO re-convergence after the failover, and serial ≡
# 4-worker byte identity itself.
recover:
    cargo run --release --example recovery

# Warning-free rustdoc over the workspace.
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Full-workspace test run (every crate, not just the facade).
test-all:
    cargo test --workspace

# Determinism suites: parallel characterization + the serving layer.
determinism:
    cargo test --test determinism
    cargo test --test serving

# Serial vs parallel characterization + memoized-rerun speedups.
bench-parallel:
    cargo bench -p atm-bench --bench parallel_charact

# Serving throughput and tail latency vs deployment size.
bench-serve:
    cargo bench -p atm-bench --bench serve_throughput

# Hot-path throughput trajectory: re-measures the stress-deploy and
# serving scenarios and refreshes BENCH_simperf.json (the `before`
# column is preserved from the pre-overhaul capture).
perf:
    cargo bench -p atm-bench --bench simperf
