# Common development tasks. `just ci` is the gate PRs must pass.

# Formatting + release build (incl. examples) + tests + warning-free
# workspace clippy over all targets + warning-free rustdoc (mirrors
# ci.sh).
ci:
    cargo fmt --check
    cargo build --release
    cargo build --release --examples
    cargo test -q
    cargo clippy --workspace --all-targets -- -D warnings
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Warning-free rustdoc over the workspace.
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Full-workspace test run (every crate, not just the facade).
test-all:
    cargo test --workspace

# Determinism suites: parallel characterization + the serving layer.
determinism:
    cargo test --test determinism
    cargo test --test serving

# Serial vs parallel characterization + memoized-rerun speedups.
bench-parallel:
    cargo bench -p atm-bench --bench parallel_charact

# Serving throughput and tail latency vs deployment size.
bench-serve:
    cargo bench -p atm-bench --bench serve_throughput
