# Common development tasks. `just ci` is the gate PRs must pass.

# Release build + tests + warning-free clippy (mirrors ci.sh).
ci:
    cargo build --release
    cargo test -q
    cargo clippy -- -D warnings

# Full-workspace test run (every crate, not just the facade).
test-all:
    cargo test --workspace

# Determinism suite for the parallel characterization engine.
determinism:
    cargo test --test determinism

# Serial vs parallel characterization + memoized-rerun speedups.
bench-parallel:
    cargo bench -p atm-bench --bench parallel_charact
