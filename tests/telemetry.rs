//! Telemetry contract tests: recording never perturbs results, the ring
//! bounds memory, and snapshots round-trip losslessly.
//!
//! The two "never perturbs" properties are the subsystem's core promise:
//! a characterization ([`LimitTable`]) and a full serving trace
//! ([`ServeReport`](power_atm::serve::ServeReport)) must be byte-identical
//! whether driven through a [`NullRecorder`] or a [`RingRecorder`].

use power_atm::prelude::*;
use power_atm::serve::{ArrivalPattern, ServeReport};
use power_atm::telemetry::NullRecorder;
use power_atm::telemetry::{SimTime, TelemetryEvent};
use power_atm::workloads::realistic_set;

const SEED: u64 = 42;

#[test]
fn ring_recorder_overflow_keeps_newest_and_counts_drops() {
    let mut rec = RingRecorder::with_capacity(8);
    for i in 0..20u64 {
        rec.advance_to(SimTime::from_nanos(i));
        rec.record(TelemetryEvent::Droop(power_atm::telemetry::DroopEvent {
            t: rec.now(),
            core: CoreId::new(0, 0),
            dip: MegaHz::new(25.0),
        }));
    }
    assert_eq!(rec.events().len(), 8);
    assert_eq!(rec.recorded_events(), 20);
    assert_eq!(rec.dropped_events(), 12);
    // The survivors are the 8 newest, in order.
    let times: Vec<u64> = rec.events().iter().map(|e| e.time().nanos()).collect();
    assert_eq!(times, (12..20).collect::<Vec<u64>>());
}

/// Wraparound under a real workload: a characterization campaign that
/// emits far more events than the ring holds must still leave a coherent
/// account — newest events kept in order, `recorded = retained +
/// dropped`, counters unaffected by eviction, and the resulting
/// [`TelemetrySnapshot`] round-trips through its text form.
#[test]
fn ring_wraparound_during_a_campaign_keeps_a_coherent_snapshot() {
    let apps = realistic_set();
    let apps: Vec<&Workload> = apps.into_iter().take(2).collect();
    let cfg = CharactConfig::quick();

    // Reference: a ring big enough to keep everything.
    let mut sys_big = System::new(ChipConfig::power7_plus(SEED));
    let mut big = RingRecorder::with_capacity(1 << 20);
    let table_big = LimitTable::characterize(&mut sys_big, &apps, &cfg, &mut big);
    assert_eq!(big.dropped_events(), 0, "reference ring must not wrap");
    let total = big.recorded_events();

    // The same campaign through a ring that must wrap many times over.
    let capacity = 32;
    assert!(
        total > 10 * capacity as u64,
        "campaign must overflow the ring"
    );
    let mut sys_small = System::new(ChipConfig::power7_plus(SEED));
    let mut small = RingRecorder::with_capacity(capacity);
    let table_small = LimitTable::characterize(&mut sys_small, &apps, &cfg, &mut small);

    // Recording is observation, never perturbation — capacity included.
    assert_eq!(table_big, table_small, "ring capacity perturbed results");

    // Exactly-once event accounting across the wrap.
    assert_eq!(small.events().len(), capacity);
    assert_eq!(small.recorded_events(), total);
    assert_eq!(small.dropped_events(), total - capacity as u64);

    // The survivors are the newest slice of the reference stream, in
    // order, with monotone timestamps.
    let tail: Vec<String> = big
        .events()
        .iter()
        .skip(big.events().len() - capacity)
        .map(|e| format!("{e:?}"))
        .collect();
    let kept: Vec<String> = small.events().iter().map(|e| format!("{e:?}")).collect();
    assert_eq!(kept, tail, "eviction must drop oldest-first");
    let times: Vec<u64> = small.events().iter().map(|e| e.time().nanos()).collect();
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "time went backwards"
    );

    // Counters live outside the ring: eviction never uncounts, and the
    // snapshot stays coherent through its canonical text form.
    assert_eq!(
        small.counter("charact.trials"),
        big.counter("charact.trials")
    );
    let snap = small.snapshot();
    assert!(snap.counter("charact.trials").unwrap_or(0) > 0);
    let parsed = TelemetrySnapshot::parse(&snap.render()).expect("canonical text parses");
    assert_eq!(parsed, snap);
}

#[test]
fn snapshot_round_trips_through_text() {
    let sys = System::new(ChipConfig::power7_plus(SEED));
    let mut mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
    let mut rec = RingRecorder::with_capacity(1024);
    let _ = mgr.evaluate_pair(
        by_name("squeezenet").unwrap(),
        by_name("x264").unwrap(),
        Strategy::ManagedBalanced(QosTarget::improvement_pct(10.0)),
        &mut rec,
    );
    let snap = rec.snapshot();
    assert!(snap.counter("chip.ticks").unwrap_or(0) > 0);
    assert!(snap.gauge("manager.budget_w").is_some());
    let text = snap.render();
    let parsed = TelemetrySnapshot::parse(&text).expect("canonical text parses");
    assert_eq!(parsed, snap);
    assert_eq!(parsed.render(), text);
}

#[test]
fn characterization_is_identical_under_null_and_ring_recorders() {
    let apps = realistic_set();
    let apps: Vec<&Workload> = apps.into_iter().take(2).collect();
    let cfg = CharactConfig::quick();

    let mut plain_sys = System::new(ChipConfig::power7_plus(SEED));
    let plain = LimitTable::characterize(&mut plain_sys, &apps, &cfg, &mut NullRecorder);

    let mut ring_sys = System::new(ChipConfig::power7_plus(SEED));
    let mut rec = RingRecorder::with_capacity(512);
    let ringed = LimitTable::characterize(&mut ring_sys, &apps, &cfg, &mut rec);

    assert_eq!(plain, ringed, "recording must not perturb the limit table");
    assert!(rec.counter("charact.trials").unwrap_or(0) > 0);
}

fn serve_report<R: Recorder>(rec: &mut R) -> ServeReport {
    let sys = System::new(ChipConfig::power7_plus(SEED));
    let mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
    let streams = vec![
        StreamSpec::critical(
            by_name("squeezenet").unwrap(),
            ArrivalPattern::Poisson {
                mean_gap: 150_000_000,
            },
            250_000_000,
        ),
        StreamSpec::background(
            by_name("x264").unwrap(),
            ArrivalPattern::Poisson {
                mean_gap: 20_000_000,
            },
        ),
    ];
    let cfg = ServeConfig::builder(SEED)
        .epochs(4)
        .epoch_ns(200_000_000)
        .chip_trial(Nanos::new(1_000.0))
        .build()
        .expect("valid config");
    ServeSim::new(mgr, cfg, streams)
        .expect("valid serving setup")
        .run(2, rec)
}

#[test]
fn serving_is_identical_under_null_and_ring_recorders() {
    let plain = serve_report(&mut NullRecorder);
    let mut rec = RingRecorder::with_capacity(4096);
    let ringed = serve_report(&mut rec);

    assert_eq!(plain, ringed, "recording must not perturb the serve report");
    assert!(plain.completed > 0, "the run must actually serve traffic");

    // The recorder saw the traffic the report accounts for.
    let accepted = rec.counter("serve.accepted").unwrap_or(0);
    assert_eq!(accepted, ringed.completed);
    let shed = rec.counter("serve.shed").unwrap_or(0);
    assert_eq!(shed, ringed.shed);
    let hist = rec
        .histogram("serve.latency_ns")
        .expect("latency histogram");
    assert_eq!(hist.count(), ringed.completed);
    // The clock followed the virtual serving timeline into the last epoch.
    assert!(rec.now().nanos() > 600_000_000);
}

#[test]
fn builders_and_errors_cover_the_redesigned_api() {
    // Workload lookup failures carry the name.
    let err = by_name("no-such-app").unwrap_err();
    assert!(matches!(err, AtmError::UnknownWorkload { .. }));
    assert!(err.to_string().contains("no-such-app"));

    // Builder validation replaces panics with typed errors.
    assert!(CharactConfig::builder().repeats(0).build().is_err());
    assert!(ServeConfig::builder(SEED).epochs(0).build().is_err());

    // serve_posture rejects an empty background set as a typed error.
    let sys = System::new(ChipConfig::power7_plus(SEED));
    let mut mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
    let err = mgr
        .serve_posture(
            by_name("squeezenet").unwrap(),
            &[],
            QosTarget::improvement_pct(10.0),
            &mut NullRecorder,
        )
        .unwrap_err();
    assert!(matches!(err, AtmError::InvalidConfig { .. }));
}
