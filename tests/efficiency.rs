//! Energy-efficiency tests: ATM's reclaimed margin can be spent as
//! frequency (the paper's setting) or as power savings (undervolting),
//! and the telemetry must account for both.

use power_atm::chip::{ChipConfig, MarginMode, System};
use power_atm::core::Schedule;
use power_atm::telemetry::NullRecorder;
use power_atm::units::{CoreId, Nanos, ProcId, Volts};
use power_atm::workloads::by_name;

#[test]
fn per_core_energy_sums_are_consistent_with_socket_power() {
    let mut sys = System::new(ChipConfig::default());
    Schedule::new()
        .run(
            CoreId::new(0, 0),
            by_name("daxpy").unwrap().clone(),
            MarginMode::Atm,
        )
        .run(
            CoreId::new(0, 1),
            by_name("gcc").unwrap().clone(),
            MarginMode::Atm,
        )
        .apply(&mut sys);
    let duration = Nanos::new(50_000.0);
    let report = sys.run(duration, &mut NullRecorder);

    // Core energies plus uncore must approximate socket mean power.
    let core_energy_uj: f64 = ProcId::new(0)
        .cores()
        .map(|c| report.core(c).energy_uj)
        .sum();
    let core_mean_w = core_energy_uj / (duration.get() * 1e-3);
    let socket_w = report.procs[0].mean_power.get();
    let uncore_w = socket_w - core_mean_w;
    assert!(
        (30.0..45.0).contains(&uncore_w),
        "implied uncore {uncore_w:.1} W (socket {socket_w:.1}, cores {core_mean_w:.1})"
    );
}

#[test]
fn busy_cores_draw_more_energy_than_idle_ones() {
    let mut sys = System::new(ChipConfig::default());
    Schedule::new()
        .run(
            CoreId::new(0, 0),
            by_name("daxpy").unwrap().clone(),
            MarginMode::Atm,
        )
        .apply(&mut sys);
    let report = sys.run(Nanos::new(20_000.0), &mut NullRecorder);
    let busy = report.core(CoreId::new(0, 0)).energy_uj;
    let idle = report.core(CoreId::new(0, 5)).energy_uj;
    assert!(busy > 3.0 * idle, "busy {busy:.1} µJ vs idle {idle:.1} µJ");
}

#[test]
fn undervolting_trades_frequency_for_energy() {
    // Same work posture at 1.25 V vs an undervolted rail: lower energy,
    // lower frequency — the conversion the off-chip controller implements.
    let run_at = |setpoint: f64| {
        let mut sys = System::new(ChipConfig::default());
        Schedule::new()
            .run(
                CoreId::new(0, 0),
                by_name("gcc").unwrap().clone(),
                MarginMode::Atm,
            )
            .apply(&mut sys);
        sys.set_rail_voltage(ProcId::new(0), Volts::new(setpoint));
        let report = sys.run(Nanos::new(20_000.0), &mut NullRecorder);
        (
            report.core(CoreId::new(0, 0)).mean_freq,
            report.procs[0].mean_power,
            report.core(CoreId::new(0, 0)).energy_uj,
        )
    };
    let (f_full, p_full, e_full) = run_at(1.25);
    let (f_uv, p_uv, e_uv) = run_at(1.20);
    assert!(f_uv < f_full);
    assert!(p_uv < p_full);
    // The busy *core's* energy per cycle improves (dynamic energy/cycle
    // scales with V²); the socket's fixed uncore power is excluded.
    let cycles = |f: power_atm::units::MegaHz| f.get() * 20_000.0; // MHz · ns
    let epc_full = e_full / cycles(f_full);
    let epc_uv = e_uv / cycles(f_uv);
    assert!(
        epc_uv < epc_full,
        "undervolt did not improve core energy/cycle: {epc_uv:.6} vs {epc_full:.6}"
    );
}

#[test]
fn gated_cores_draw_an_order_of_magnitude_less() {
    let mut sys = System::new(ChipConfig::default());
    Schedule::new()
        .idle_cores(MarginMode::Gated)
        .run(
            CoreId::new(0, 0),
            by_name("gcc").unwrap().clone(),
            MarginMode::Atm,
        )
        .apply(&mut sys);
    let report = sys.run(Nanos::new(20_000.0), &mut NullRecorder);
    let gated = report.core(CoreId::new(0, 4)).energy_uj;

    let mut sys = System::new(ChipConfig::default());
    Schedule::new()
        .run(
            CoreId::new(0, 0),
            by_name("gcc").unwrap().clone(),
            MarginMode::Atm,
        )
        .apply(&mut sys);
    let report = sys.run(Nanos::new(20_000.0), &mut NullRecorder);
    let idle = report.core(CoreId::new(0, 4)).energy_uj;
    assert!(
        gated < idle / 5.0,
        "gated {gated:.2} µJ vs idle {idle:.2} µJ"
    );
}
