//! Failure-model tests: aggressive configurations must fail, validated
//! ones must not, and failures must look like the paper's (crashes,
//! abnormal exits, silent data corruption).

use power_atm::chip::{ChipConfig, FailureKind, MarginMode, System};
use power_atm::telemetry::NullRecorder;
use power_atm::units::{CoreId, MegaHz, Nanos};
use power_atm::workloads::{by_name, voltage_virus};

#[test]
fn removing_entire_preset_always_fails() {
    let mut sys = System::new(ChipConfig::default());
    for core in [CoreId::new(0, 0), CoreId::new(1, 7)] {
        sys.set_mode(core, MarginMode::Atm);
        let max = sys.core(core).cpms().max_reduction();
        sys.set_reduction(core, max).unwrap();
        let report = sys.run(Nanos::new(100_000.0), &mut NullRecorder);
        assert!(
            report.failure.is_some(),
            "{core}: whole-preset removal survived"
        );
        assert_eq!(report.failure.unwrap().core, core);
        sys.set_reduction(core, 0).unwrap();
        sys.set_mode(core, MarginMode::Static);
    }
}

#[test]
fn failure_aborts_the_run_early() {
    let mut sys = System::new(ChipConfig::default());
    let core = CoreId::new(0, 0);
    sys.set_mode(core, MarginMode::Atm);
    let max = sys.core(core).cpms().max_reduction();
    sys.set_reduction(core, max).unwrap();
    let report = sys.run(Nanos::new(1_000_000.0), &mut NullRecorder);
    assert!(report.failure.is_some());
    assert!(
        report.duration.get() < 1_000_000.0,
        "run continued past the failure"
    );
}

#[test]
fn failure_kinds_cover_all_three_manifestations() {
    // Over many failing trials the model must produce crashes, abnormal
    // exits and SDC (paper Sec. III-B).
    let mut sys = System::new(ChipConfig::default());
    let core = CoreId::new(0, 2);
    sys.set_mode(core, MarginMode::Atm);
    let max = sys.core(core).cpms().max_reduction();
    sys.set_reduction(core, max).unwrap();
    sys.assign(core, voltage_virus());

    let mut seen = std::collections::HashSet::new();
    for _ in 0..60 {
        let report = sys.run(Nanos::new(20_000.0), &mut NullRecorder);
        if let Some(f) = report.failure {
            seen.insert(f.kind);
        }
        if seen.len() == 3 {
            break;
        }
    }
    for kind in [
        FailureKind::SystemCrash,
        FailureKind::AbnormalExit,
        FailureKind::SilentDataCorruption,
    ] {
        assert!(seen.contains(&kind), "never saw {kind}");
    }
}

#[test]
fn static_margin_never_fails_even_with_aggressive_reductions_programmed() {
    let mut sys = System::new(ChipConfig::default());
    for core in CoreId::all() {
        let max = sys.core(core).cpms().max_reduction();
        sys.set_reduction(core, max).unwrap();
    }
    sys.assign_all(&voltage_virus());
    // Static mode ignores the CPM configuration entirely.
    let report = sys.run(Nanos::new(100_000.0), &mut NullRecorder);
    assert!(report.is_ok());
    for c in &report.cores {
        assert_eq!(c.mean_freq, MegaHz::new(4200.0));
    }
}

#[test]
fn disabling_failure_checking_suppresses_failures() {
    let cfg = ChipConfig {
        failure_checking: false,
        ..ChipConfig::default()
    };
    let mut sys = System::new(cfg);
    let core = CoreId::new(0, 0);
    sys.set_mode(core, MarginMode::Atm);
    let max = sys.core(core).cpms().max_reduction();
    sys.set_reduction(core, max).unwrap();
    let report = sys.run(Nanos::new(50_000.0), &mut NullRecorder);
    assert!(report.is_ok());
}

/// End-to-end supervisor recovery: a served system riding out the
/// droop-storm fault plan. The storm floods the first ~1300 ticks with
/// load-step bursts and rail sags; the supervisor must notice (strike,
/// roll back, possibly safe-mode), and once the plan exhausts itself the
/// critical stream's per-epoch p99 must be back within its SLO.
#[test]
fn supervisor_contains_a_droop_storm_and_restores_the_slo() {
    use power_atm::core::charact::CharactConfig;
    use power_atm::core::{AtmManager, Governor, MarginSupervisor, SupervisorConfig};
    use power_atm::faults::{droop_storm, CampaignHook};
    use power_atm::serve::{ArrivalPattern, ServeConfig, ServeSim, StreamSpec};

    const SEED: u64 = 42;
    const SLO_NS: u64 = 250_000_000;
    // The storm's last injection drains around tick 1263; at 8 µs of
    // chip time per epoch (160 ticks), epoch 8 onward is storm-free.
    const CLEAN_FROM_EPOCH: usize = 8;

    let streams = || {
        vec![
            StreamSpec::critical(
                by_name("squeezenet").expect("catalog"),
                ArrivalPattern::Poisson {
                    mean_gap: 150_000_000,
                },
                SLO_NS,
            ),
            StreamSpec::background(
                by_name("x264").expect("catalog"),
                ArrivalPattern::Poisson {
                    mean_gap: 20_000_000,
                },
            ),
        ]
    };
    let run = |workers: usize| {
        let sys = System::new(ChipConfig::power7_plus(SEED));
        let mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
        let cfg = ServeConfig::builder(SEED)
            .epochs(12)
            .epoch_ns(200_000_000)
            .chip_trial(Nanos::new(8_000.0))
            .build()
            .expect("valid config");
        let mut s = ServeSim::new(mgr, cfg, streams()).expect("valid serving setup");
        s.set_supervisor(MarginSupervisor::new(SupervisorConfig::default()));
        s.set_fault_hook(Box::new(CampaignHook::resolve(&droop_storm(), SEED, 0)));
        s.run(workers, &mut NullRecorder)
    };

    let report = run(1);
    // The supervisor reacted to the storm.
    assert!(
        report
            .transitions
            .iter()
            .any(|t| t.action.contains("supervisor")),
        "no supervisor action during the storm: {:?}",
        report.transitions
    );

    // Bounded recovery: every storm-free epoch with critical traffic is
    // back within the SLO.
    let crit = report.critical();
    let tail: Vec<u64> = crit
        .epoch_p99_ns
        .iter()
        .copied()
        .skip(CLEAN_FROM_EPOCH)
        .filter(|&p| p > 0)
        .collect();
    assert!(!tail.is_empty(), "critical stream kept serving after storm");
    for p99 in &tail {
        assert!(
            *p99 <= SLO_NS,
            "post-storm epoch p99 {p99} ns exceeds SLO {SLO_NS} ns"
        );
    }

    // Supervised, fault-injected serving stays deterministic.
    assert_eq!(report, run(4));
}

#[test]
fn noisier_workloads_fail_at_less_aggressive_settings() {
    // At a fixed reduction between the x264 limit and the idle limit,
    // x264 should fail while idle survives — the essence of Fig. 9/10.
    let mut sys = System::new(ChipConfig::default());
    let core = CoreId::new(0, 1);
    sys.set_mode(core, MarginMode::Atm);

    // Find the idle limit quickly.
    let idle = power_atm::workloads::Workload::idle();
    let dist = power_atm::core::charact::find_limit(
        &mut sys,
        core,
        &[&idle],
        0,
        &power_atm::core::CharactConfig::quick(),
        &mut NullRecorder,
    );
    let limit = dist.limit();
    assert!(limit >= 2, "core unexpectedly weak");

    sys.set_mode(core, MarginMode::Atm);
    sys.set_reduction(core, limit).unwrap();
    sys.assign(core, by_name("x264").unwrap().clone());
    let mut x264_failed = false;
    for _ in 0..8 {
        if sys
            .run(Nanos::new(50_000.0), &mut NullRecorder)
            .failure
            .is_some()
        {
            x264_failed = true;
            break;
        }
    }
    assert!(
        x264_failed,
        "x264 survived the idle limit on {core}; no rollback would be needed"
    );
}
