//! End-to-end characterization pipeline on freshly minted silicon:
//! the full idle → uBench → realistic chain of paper Secs. IV–VI.

use power_atm::chip::{ChipConfig, System};
use power_atm::core::charact::{
    idle_characterization, realistic_characterization, ubench_characterization, CharactConfig,
};
use power_atm::core::LimitTable;
use power_atm::telemetry::NullRecorder;
use power_atm::units::CoreId;
use power_atm::workloads::by_name;

fn quick() -> CharactConfig {
    CharactConfig::quick()
}

#[test]
fn full_pipeline_produces_monotone_limit_table() {
    // Use a non-default seed: the invariants must hold for any minted
    // silicon, not just the calibration seed.
    let mut sys = System::new(ChipConfig::power7_plus(7));
    let apps = [
        by_name("x264").unwrap(),
        by_name("gcc").unwrap(),
        by_name("ferret").unwrap(),
        by_name("leela").unwrap(),
        by_name("mcf").unwrap(),
    ];
    let (table, idle, ubench, realistic) =
        LimitTable::characterize_detailed(&mut sys, &apps, &quick(), &mut NullRecorder);
    table.assert_invariants();

    assert_eq!(idle.len(), 16);
    assert_eq!(ubench.len(), 16);
    assert_eq!(realistic.profiles.len(), apps.len() * 16);

    // The system is left deployed at thread-worst.
    for core in CoreId::all() {
        assert_eq!(
            sys.core(core).reduction(),
            table.thread_worst[core.flat_index()]
        );
    }
}

#[test]
fn idle_limits_tight_across_seeds() {
    for seed in [3u64, 11] {
        let mut sys = System::new(ChipConfig::power7_plus(seed));
        let results = idle_characterization(&mut sys, &quick(), &mut NullRecorder);
        for r in &results {
            assert!(
                r.distribution.spread() <= 2,
                "seed {seed} {}: spread {}",
                r.core,
                r.distribution.spread()
            );
        }
    }
}

#[test]
fn ubench_fragile_cores_are_a_minority() {
    let mut sys = System::new(ChipConfig::power7_plus(5));
    let cfg = quick();
    let idle = idle_characterization(&mut sys, &cfg, &mut NullRecorder);
    let mut idle_limits = [0usize; 16];
    for r in &idle {
        idle_limits[r.core.flat_index()] = r.idle_limit();
    }
    let ub = ubench_characterization(&mut sys, &idle_limits, &cfg, &mut NullRecorder);
    let fragile = ub.iter().filter(|r| r.rollback() > 0).count();
    assert!(fragile <= 10, "{fragile}/16 cores fragile under uBench");
}

#[test]
fn thread_worst_sustains_every_profiled_app() {
    // The defining property of thread-worst: every profiled application
    // runs correctly at it.
    let mut sys = System::new(ChipConfig::power7_plus(42));
    let cfg = quick();
    let apps = [by_name("x264").unwrap(), by_name("gcc").unwrap()];
    let idle = idle_characterization(&mut sys, &cfg, &mut NullRecorder);
    let mut idle_limits = [0usize; 16];
    for r in &idle {
        idle_limits[r.core.flat_index()] = r.idle_limit();
    }
    let ub = ubench_characterization(&mut sys, &idle_limits, &cfg, &mut NullRecorder);
    let mut ubench_limits = [0usize; 16];
    for r in &ub {
        ubench_limits[r.core.flat_index()] = r.ubench_limit().min(r.idle_limit);
    }
    let realistic =
        realistic_characterization(&mut sys, &ubench_limits, &apps, &cfg, &mut NullRecorder);

    // Re-validate on a couple of cores with fresh trials.
    for core in [CoreId::new(0, 0), CoreId::new(1, 3)] {
        sys.set_mode(core, power_atm::chip::MarginMode::Atm);
        sys.set_reduction(core, realistic.thread_worst[core.flat_index()])
            .unwrap();
        for app in &apps {
            sys.assign(core, (*app).clone());
            let report = sys.run(power_atm::units::Nanos::new(20_000.0), &mut NullRecorder);
            assert!(
                report.is_ok(),
                "{core} failed {} at thread-worst",
                app.name()
            );
        }
        sys.set_mode(core, power_atm::chip::MarginMode::Static);
    }
}

#[test]
fn characterization_is_deterministic() {
    let run = || {
        let mut sys = System::new(ChipConfig::power7_plus(13));
        let results = idle_characterization(&mut sys, &quick(), &mut NullRecorder);
        results
            .iter()
            .map(|r| (r.idle_limit(), r.limit_frequency.get()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
