//! Cross-crate tests of the Fig. 13/14 management scheme.

use power_atm::chip::{ChipConfig, System};
use power_atm::core::charact::CharactConfig;
use power_atm::core::manager::Strategy;
use power_atm::core::{AtmManager, Governor, QosTarget, Scheduler};
use power_atm::telemetry::NullRecorder;
use power_atm::units::ProcId;
use power_atm::workloads::by_name;

fn manager(governor: Governor) -> AtmManager {
    let sys = System::new(ChipConfig::default());
    AtmManager::deploy(sys, governor, &CharactConfig::quick())
}

#[test]
fn strategies_order_for_multiple_pairs() {
    let mut mgr = manager(Governor::Default);
    for (critical, background) in [("squeezenet", "x264"), ("seq2seq", "streamcluster")] {
        let c = by_name(critical).unwrap();
        let b = by_name(background).unwrap();
        let stat = mgr.evaluate_pair(c, b, Strategy::StaticMargin, &mut NullRecorder);
        let def = mgr.evaluate_pair(c, b, Strategy::DefaultAtm, &mut NullRecorder);
        let unm = mgr.evaluate_pair(c, b, Strategy::FineTunedUnmanaged, &mut NullRecorder);
        let max = mgr.evaluate_pair(c, b, Strategy::ManagedMax, &mut NullRecorder);
        assert!(
            (stat.speedup - 1.0).abs() < 1e-9,
            "{critical}: static {:.3}",
            stat.speedup
        );
        assert!(def.speedup > 1.0, "{critical}: default {:.3}", def.speedup);
        assert!(unm.speedup > def.speedup, "{critical}");
        assert!(max.speedup > unm.speedup, "{critical}");
        for o in [&stat, &def, &unm, &max] {
            assert!(o.ok, "{critical} under {} failed", o.strategy);
        }
    }
}

#[test]
fn balanced_throttles_hungry_backgrounds_but_not_streamcluster() {
    let mut mgr = manager(Governor::Default);
    let qos = QosTarget::improvement_pct(10.0);
    let seq2seq = by_name("seq2seq").unwrap();

    // streamcluster draws so little power the budget allows full ATM.
    let sc = by_name("streamcluster").unwrap();
    let easy = mgr.evaluate_pair(
        seq2seq,
        sc,
        Strategy::ManagedBalanced(qos),
        &mut NullRecorder,
    );
    assert!(
        qos.met_by(easy.speedup),
        "streamcluster pair {:.3}",
        easy.speedup
    );

    // lu_cb is power-hungry: some throttling is expected relative to
    // streamcluster's setting, and QoS must still be met.
    let lu = by_name("lu_cb").unwrap();
    let hard = mgr.evaluate_pair(
        seq2seq,
        lu,
        Strategy::ManagedBalanced(qos),
        &mut NullRecorder,
    );
    assert!(qos.met_by(hard.speedup), "lu_cb pair {:.3}", hard.speedup);
    assert!(
        hard.chip_power.get() < 170.0,
        "power not controlled: {}",
        hard.chip_power
    );
}

#[test]
fn conservative_governor_places_critical_on_robust_core() {
    let mut mgr = manager(Governor::Conservative);
    let c = by_name("babi").unwrap();
    let b = by_name("blackscholes").unwrap();
    let outcome = mgr.evaluate_pair(c, b, Strategy::ManagedMax, &mut NullRecorder);
    assert!(outcome.ok);

    // The chosen core must be in the robust half of socket 0.
    let robust = Scheduler::new(mgr.system_mut()).rank_cores(ProcId::new(0), true);
    assert!(
        robust
            .iter()
            .any(|(core, _)| *core == outcome.critical_core),
        "critical on non-robust core {}",
        outcome.critical_core
    );
}

#[test]
fn conservative_deploys_less_aggressively_than_default() {
    let default = manager(Governor::Default);
    let conservative = manager(Governor::Conservative);
    let d_map = default
        .governor()
        .reduction_map(default.deployed(), None, None);
    let c_map = conservative
        .governor()
        .reduction_map(conservative.deployed(), None, None);
    for i in 0..16 {
        assert!(
            c_map[i] <= d_map[i],
            "core {i}: {} > {}",
            c_map[i],
            d_map[i]
        );
    }
}

#[test]
fn managed_runs_never_fail_at_deployed_limits() {
    // The whole point of the stress-test deployment: anything the manager
    // schedules afterwards executes correctly.
    let mut mgr = manager(Governor::Default);
    let qos = QosTarget::improvement_pct(10.0);
    for (c, b) in [
        ("squeezenet", "x264"),
        ("vgg19", "swaptions"),
        ("bodytrack", "x264"),
    ] {
        let critical = by_name(c).unwrap();
        let background = by_name(b).unwrap();
        for strategy in [
            Strategy::FineTunedUnmanaged,
            Strategy::ManagedMax,
            Strategy::ManagedBalanced(qos),
        ] {
            let o = mgr.evaluate_pair(critical, background, strategy, &mut NullRecorder);
            assert!(o.ok, "{c}:{b} failed under {}", o.strategy);
        }
    }
}
