//! Acceptance tests for the fault-injection campaign engine and the
//! margin-safety supervisor's safe-mode guarantee.
//!
//! Two properties are load-bearing for the whole `atm-faults` design:
//!
//! 1. A [`FaultCampaignReport`] is a pure function of `(plan, seed)` —
//!    rerunning a campaign, with any worker count, reproduces every byte.
//! 2. Safe mode *provably* reverts a core to the static-margin baseline:
//!    a supervised core driven into safe mode follows the exact frequency
//!    trajectory of a never-tuned core on the same silicon lot.

use power_atm::chip::{ChipConfig, ChipEvent, FailureEvent, FailureKind, MarginMode, System};
use power_atm::core::charact::CharactConfig;
use power_atm::core::{AtmManager, Governor, MarginSupervisor, QosTarget, SupervisorConfig};
use power_atm::faults::{actuator_flap, droop_storm, sensor_chaos, FaultCampaign};
use power_atm::telemetry::NullRecorder;
use power_atm::units::{CoreId, MegaHz, Nanos};
use power_atm::workloads::by_name;

const SEED: u64 = 42;

#[test]
fn droop_storm_report_is_byte_identical_across_runs_and_workers() {
    let reference = FaultCampaign::new(droop_storm(), SEED).trials(2).run(1);
    let rerun = FaultCampaign::new(droop_storm(), SEED).trials(2).run(1);
    let parallel = FaultCampaign::new(droop_storm(), SEED).trials(2).run(3);
    assert_eq!(reference, rerun, "same seed, same worker count");
    assert_eq!(reference, parallel, "worker count must not leak in");
}

#[test]
fn sensor_chaos_report_is_worker_count_independent() {
    let serial = FaultCampaign::new(sensor_chaos(), SEED).trials(2).run(1);
    let parallel = FaultCampaign::new(sensor_chaos(), SEED).trials(2).run(2);
    assert_eq!(serial, parallel);
}

#[test]
fn actuator_flap_report_is_worker_count_independent() {
    let serial = FaultCampaign::new(actuator_flap(), SEED).trials(2).run(1);
    let parallel = FaultCampaign::new(actuator_flap(), SEED).trials(2).run(4);
    assert_eq!(serial, parallel);
}

#[test]
fn droop_storm_campaign_detects_and_accounts_coherently() {
    let report = FaultCampaign::new(droop_storm(), SEED).trials(2).run(2);
    assert!(report.injected > 0, "the plan must actually fire");
    assert!(report.detected > 0, "a droop storm must be noticed");
    assert!(
        report.detected <= report.injected,
        "detection cannot exceed injection"
    );
    assert!(
        report.recovered <= report.detected,
        "recovery only follows detection"
    );
    assert_eq!(
        report.time_to_detect.count, report.detected as u64,
        "every detection contributes a time-to-detect sample"
    );
    assert_eq!(
        report.time_to_recover.count, report.recovered as u64,
        "every recovery contributes a time-to-recover sample"
    );
}

/// The safe-mode guarantee, by golden comparison: after the supervisor
/// escalates a flapping core to safe mode, the core's margin state equals
/// the never-tuned configuration *and* its observable frequency
/// trajectory matches a freshly minted, never-characterized system on the
/// same silicon lot, sample for sample.
#[test]
fn safe_mode_provably_reverts_to_static_baseline() {
    const LOT: u64 = 7;
    let sys = System::new(ChipConfig::power7_plus(LOT));
    let mut mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());

    // Pick a core the deployment actually fine-tuned, so reverting it is
    // a real state change rather than a no-op.
    let victim = CoreId::all()
        .find(|&c| mgr.system().core(c).reduction() > 0)
        .expect("deployment fine-tunes at least one core");

    let mut sup = MarginSupervisor::new(SupervisorConfig::default());
    sup.attach(mgr.system());
    let crash = |core: CoreId| {
        vec![ChipEvent::Failure(FailureEvent {
            core,
            kind: FailureKind::SystemCrash,
            at: Nanos::ZERO,
        })]
    };
    // Three strike windows: rollback, rollback, safe mode.
    for _ in 0..3 {
        let actions = sup.observe_window(mgr.system(), &crash(victim));
        let _ = mgr.apply_supervisor_actions(&actions, &mut NullRecorder);
    }

    assert!(sup.in_safe_mode(victim));
    assert!(mgr.safe_mode_cores().contains(&victim));
    assert_eq!(mgr.system().core(victim).mode(), MarginMode::Static);
    assert_eq!(mgr.system().core(victim).reduction(), 0);

    // Golden trajectory: the safe-moded core under load...
    let workload = by_name("x264").expect("x264 exists");
    let horizon = Nanos::new(20_000.0);
    mgr.system_mut().assign(victim, workload.clone());
    let (_, supervised) = mgr.system_mut().run_traced(horizon, victim, 1);

    // ...versus the same silicon lot that never saw a characterization.
    let mut golden_sys = System::new(ChipConfig::power7_plus(LOT));
    golden_sys.assign(victim, workload.clone());
    let (_, golden) = golden_sys.run_traced(horizon, victim, 1);

    let freqs = |t: &power_atm::chip::Trace| -> Vec<MegaHz> {
        t.samples().iter().map(|s| s.freq).collect()
    };
    assert_eq!(
        freqs(&supervised),
        freqs(&golden),
        "safe mode must walk the never-tuned trajectory"
    );

    // And the placement layer honors the revert: a fresh serving posture
    // neither wakes the core nor hands it work.
    let posture = mgr
        .serve_posture(
            by_name("squeezenet").expect("squeezenet exists"),
            std::slice::from_ref(workload),
            QosTarget::improvement_pct(5.0),
            &mut NullRecorder,
        )
        .expect("posture with one background");
    assert_ne!(posture.placement.critical_core, victim);
    assert!(!posture.placement.background_cores.contains(&victim));
    assert_eq!(mgr.system().core(victim).mode(), MarginMode::Static);
    assert_eq!(mgr.system().core(victim).reduction(), 0);
}
