//! Determinism suite for the parallel characterization engine: for any
//! seed and campaign, `run_parallel(k)` must produce a byte-identical
//! `LimitTable` and per-⟨app, core⟩ rollback profile for every worker
//! count — the serial walk (k = 1) is the reference.

use power_atm::chip::ChipConfig;
use power_atm::core::charact::CharactConfig;
use power_atm::core::{CharactEngine, EngineResult};
use power_atm::units::{CoreId, Nanos};
use power_atm::workloads::by_name;
use proptest::prelude::*;

/// One engine run with a fresh engine (fresh cache) for worker count `k`.
fn run(seed: u64, cfg: &CharactConfig, apps: &[&str], k: usize) -> EngineResult {
    let apps: Vec<_> = apps
        .iter()
        .map(|n| by_name(n).expect("known app"))
        .collect();
    let engine = CharactEngine::new(ChipConfig::power7_plus(seed), *cfg);
    engine.run_parallel(&apps, k)
}

proptest! {
    // Full-chip characterizations are expensive; a few random
    // configurations exercise the property across seeds and campaign
    // shapes.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// `run_parallel(k)` for k ∈ {1, 2, 8} yields byte-identical limit
    /// tables and rollback profiles across random chip seeds and trial
    /// lengths.
    #[test]
    fn parallel_equals_serial(
        seed in 0u64..10_000,
        trial_us in 10u64..=25,
    ) {
        let cfg = CharactConfig {
            trial: Nanos::new(trial_us as f64 * 1000.0),
            repeats: 2,
        };
        let apps = ["x264", "gcc"];
        let serial = run(seed, &cfg, &apps, 1);
        for k in [2usize, 8] {
            let parallel = run(seed, &cfg, &apps, k);
            // Table I, byte for byte.
            prop_assert_eq!(&serial.table, &parallel.table, "k = {}", k);
            // Per-core idle detail including bit-exact limit frequencies.
            prop_assert_eq!(&serial.idle, &parallel.idle, "k = {}", k);
            prop_assert_eq!(&serial.ubench, &parallel.ubench, "k = {}", k);
            // The full per-⟨app, core⟩ rollback profile (Fig. 10).
            prop_assert_eq!(&serial.realistic, &parallel.realistic, "k = {}", k);
            for app in apps {
                for core in CoreId::all() {
                    let s = serial.realistic.profile(app, core).expect("profiled");
                    let p = parallel.realistic.profile(app, core).expect("profiled");
                    prop_assert_eq!(s.rollback(), p.rollback());
                }
            }
            // Even the work accounting is scheduling-independent.
            prop_assert_eq!(
                serial.stats.points_simulated,
                parallel.stats.points_simulated
            );
        }
    }
}

/// The acceptance posture of the issue, pinned as a plain test: on the
/// default 16-core chip, 1, 2 and 8 workers agree exactly.
#[test]
fn default_chip_worker_counts_agree() {
    let cfg = CharactConfig::quick();
    let apps = ["x264"];
    let serial = run(42, &cfg, &apps, 1);
    serial.table.assert_invariants();
    for k in [2usize, 8] {
        let parallel = run(42, &cfg, &apps, k);
        assert_eq!(serial.table, parallel.table, "k = {k}");
        assert_eq!(serial.realistic, parallel.realistic, "k = {k}");
    }
}
