//! Determinism suite for the parallel characterization engine: for any
//! seed and campaign, `run_parallel(k)` must produce a byte-identical
//! `LimitTable` and per-⟨app, core⟩ rollback profile for every worker
//! count — the serial walk (k = 1) is the reference.

use power_atm::chip::ChipConfig;
use power_atm::core::charact::CharactConfig;
use power_atm::core::{CharactEngine, EngineResult};
use power_atm::telemetry::NullRecorder;
use power_atm::units::{CoreId, Nanos};
use power_atm::workloads::by_name;
use proptest::prelude::*;

/// One engine run with a fresh engine (fresh cache) for worker count `k`.
fn run(seed: u64, cfg: &CharactConfig, apps: &[&str], k: usize) -> EngineResult {
    let apps: Vec<_> = apps
        .iter()
        .map(|n| by_name(n).expect("known app"))
        .collect();
    let engine = CharactEngine::new(ChipConfig::power7_plus(seed), *cfg);
    engine.run_parallel(&apps, k)
}

proptest! {
    // Full-chip characterizations are expensive; a few random
    // configurations exercise the property across seeds and campaign
    // shapes.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// `run_parallel(k)` for k ∈ {1, 2, 8} yields byte-identical limit
    /// tables and rollback profiles across random chip seeds and trial
    /// lengths.
    #[test]
    fn parallel_equals_serial(
        seed in 0u64..10_000,
        trial_us in 10u64..=25,
    ) {
        let cfg = CharactConfig {
            trial: Nanos::new(trial_us as f64 * 1000.0),
            repeats: 2,
        };
        let apps = ["x264", "gcc"];
        let serial = run(seed, &cfg, &apps, 1);
        for k in [2usize, 8] {
            let parallel = run(seed, &cfg, &apps, k);
            // Table I, byte for byte.
            prop_assert_eq!(&serial.table, &parallel.table, "k = {}", k);
            // Per-core idle detail including bit-exact limit frequencies.
            prop_assert_eq!(&serial.idle, &parallel.idle, "k = {}", k);
            prop_assert_eq!(&serial.ubench, &parallel.ubench, "k = {}", k);
            // The full per-⟨app, core⟩ rollback profile (Fig. 10).
            prop_assert_eq!(&serial.realistic, &parallel.realistic, "k = {}", k);
            for app in apps {
                for core in CoreId::all() {
                    let s = serial.realistic.profile(app, core).expect("profiled");
                    let p = parallel.realistic.profile(app, core).expect("profiled");
                    prop_assert_eq!(s.rollback(), p.rollback());
                }
            }
            // Even the work accounting is scheduling-independent.
            prop_assert_eq!(
                serial.stats.points_simulated,
                parallel.stats.points_simulated
            );
        }
    }
}

/// The stride fast path is an optimization, not a semantic: with droop
/// alarms subscribed and firing, [`System::drain_events`] must return the
/// same events, in the same order, with identical payloads, whether the
/// stride optimization is enabled or not.
///
/// [`System::drain_events`]: power_atm::chip::System::drain_events
#[test]
fn stride_fast_path_preserves_event_stream() {
    use power_atm::chip::{MarginMode, System};
    use power_atm::units::MegaHz;

    let run_events = |stride: bool| -> Vec<String> {
        let mut sys = System::new(ChipConfig::power7_plus(42));
        sys.set_stride(stride);
        sys.set_droop_alarm(Some(MegaHz::new(25.0)));
        let loud = CoreId::new(0, 2);
        sys.set_mode(loud, MarginMode::Atm);
        sys.assign(loud, by_name("x264").expect("known app").clone());
        let _ = sys.run(Nanos::new(80_000.0), &mut NullRecorder);
        sys.drain_events()
            .iter()
            .map(|e| format!("{e:?}"))
            .collect()
    };

    let with_stride = run_events(true);
    let without_stride = run_events(false);
    assert!(
        !without_stride.is_empty(),
        "the scenario must actually raise droop alarms"
    );
    assert_eq!(with_stride, without_stride);
}

/// Determinism survives closing the loop: a serving run with silicon
/// drift armed *and* the online adapter active — estimator updates,
/// micro-probe bursts, re-tighten episodes — still produces a
/// byte-identical [`ServeReport`] (including the [`AdaptReport`]) for
/// every worker count, and across repeated runs.
///
/// [`ServeReport`]: power_atm::serve::ServeReport
/// [`AdaptReport`]: power_atm::adapt::AdaptReport
#[test]
fn adaptation_is_byte_identical_across_runs_and_workers() {
    use power_atm::adapt::{AdaptConfig, OnlineAdapter};
    use power_atm::core::{AtmManager, Governor};
    use power_atm::serve::{ArrivalPattern, ServeConfig, ServeSim, StreamSpec};
    use power_atm::silicon::DriftModel;
    use power_atm::{chip::System, serve::ServeReport};

    let run = |workers: usize| -> ServeReport {
        let sys = System::new(ChipConfig::power7_plus(42));
        let mgr = AtmManager::deploy(sys, Governor::Conservative, &CharactConfig::quick());
        let streams = vec![
            StreamSpec::critical(
                by_name("squeezenet").expect("catalog"),
                ArrivalPattern::Poisson {
                    mean_gap: 150_000_000,
                },
                250_000_000,
            ),
            StreamSpec::background(
                by_name("x264").expect("catalog"),
                ArrivalPattern::Poisson {
                    mean_gap: 40_000_000,
                },
            ),
        ];
        let cfg = ServeConfig::builder(42)
            .epochs(12)
            .epoch_ns(200_000_000)
            .chip_trial(Nanos::new(1_000.0))
            .build()
            .expect("valid config");
        let mut sim = ServeSim::new(mgr, cfg, streams).expect("valid serving setup");
        sim.set_drift(DriftModel::standard(42));
        sim.set_adapter(Box::new(OnlineAdapter::new(AdaptConfig::standard())));
        sim.run(workers, &mut NullRecorder)
    };

    let reference = run(1);
    let adapt = reference.adapt.as_ref().expect("adaptation was on");
    assert!(adapt.observations > 0, "the adapter must actually observe");
    let reference_text = format!("{reference:#?}");
    assert_eq!(reference, run(1), "repeated runs diverged");
    for workers in [2usize, 8] {
        let parallel = run(workers);
        assert_eq!(reference, parallel, "k = {workers} diverged");
        assert_eq!(
            reference_text,
            format!("{parallel:#?}"),
            "k = {workers} bytes diverged"
        );
    }
}

/// Determinism survives the power regulator: a capped serving run — the
/// integral controller proposing, the serving loop committing throttle
/// ladder moves, the energy meter integrating picojoules — produces a
/// byte-identical [`ServeReport`] (including the [`CapReport`] and
/// [`EnergyReport`]) for worker counts k ∈ {1, 2, 8} and across
/// repeated runs.
///
/// [`ServeReport`]: power_atm::serve::ServeReport
/// [`CapReport`]: power_atm::capping::CapReport
/// [`EnergyReport`]: power_atm::capping::EnergyReport
#[test]
fn capped_serving_is_byte_identical_across_runs_and_workers() {
    use power_atm::capping::{CapConfig, PowerBudget};
    use power_atm::core::{AtmManager, Governor};
    use power_atm::serve::{ArrivalPattern, ServeConfig, ServeSim, StreamSpec};
    use power_atm::{chip::System, serve::ServeReport};

    let run = |workers: usize| -> ServeReport {
        let sys = System::new(ChipConfig::power7_plus(42));
        let mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
        let streams = vec![
            StreamSpec::critical(
                by_name("squeezenet").expect("catalog"),
                ArrivalPattern::Poisson {
                    mean_gap: 150_000_000,
                },
                250_000_000,
            ),
            StreamSpec::background(
                by_name("x264").expect("catalog"),
                ArrivalPattern::Poisson {
                    mean_gap: 40_000_000,
                },
            ),
        ];
        let cfg = ServeConfig::builder(42)
            .epochs(12)
            .epoch_ns(200_000_000)
            .chip_trial(Nanos::new(1_000.0))
            .build()
            .expect("valid config");
        let mut sim = ServeSim::new(mgr, cfg, streams).expect("valid serving setup");
        // A brownout exercises both directions of the ladder: throttle
        // into the window, release after it.
        sim.set_cap(CapConfig::standard(PowerBudget::brownout(
            1 << 30,
            60_000,
            3,
            7,
        )))
        .expect("valid cap");
        sim.run(workers, &mut NullRecorder)
    };

    let reference = run(1);
    let cap = reference.cap.as_ref().expect("capping was on");
    assert!(cap.epochs > 0, "the regulator must actually regulate");
    assert!(
        reference.energy.total_pj > 0,
        "the energy meter must actually integrate"
    );
    let reference_text = format!("{reference:#?}");
    assert_eq!(reference, run(1), "repeated capped runs diverged");
    for workers in [2usize, 8] {
        let parallel = run(workers);
        assert_eq!(reference, parallel, "k = {workers} diverged");
        assert_eq!(
            reference_text,
            format!("{parallel:#?}"),
            "k = {workers} bytes diverged"
        );
    }
}

/// The acceptance posture of the issue, pinned as a plain test: on the
/// default 16-core chip, 1, 2 and 8 workers agree exactly.
#[test]
fn default_chip_worker_counts_agree() {
    let cfg = CharactConfig::quick();
    let apps = ["x264"];
    let serial = run(42, &cfg, &apps, 1);
    serial.table.assert_invariants();
    for k in [2usize, 8] {
        let parallel = run(42, &cfg, &apps, k);
        assert_eq!(serial.table, parallel.table, "k = {k}");
        assert_eq!(serial.realistic, parallel.realistic, "k = {k}");
    }
}
