//! Exactness suite for the tick-loop hot-path overhaul.
//!
//! The overhaul (invariant hoisting, allocation-free stepping, the stride
//! fast path) is licensed only by proofs that it cannot change a single
//! bit of any trajectory. These tests pin that promise three ways:
//!
//! 1. the full reference bundle — steady-state, droop-heavy, parallel
//!    characterization and serving scenarios — must match the golden file
//!    captured from the tree *before* the overhaul, byte for byte;
//! 2. disabling the stride fast path (`System::set_stride(false)`) must
//!    not change any report, while the fast path must actually engage
//!    when enabled;
//! 3. for any split of a run into chunks, `run_chunked` must equal the
//!    single continuous run byte for byte.

use power_atm::chip::{ChipConfig, MarginMode, System};
use power_atm::experiments::perfref;
use power_atm::telemetry::NullRecorder;
use power_atm::units::{CoreId, Nanos};
use power_atm::workloads::by_name;
use proptest::prelude::*;

/// Pinpoints the first diverging line so a regression reads as a small
/// diff, not two megabyte blobs.
fn assert_same_text(actual: &str, expected: &str, what: &str) {
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(a, e, "{what}: first divergence at line {}", i + 1);
    }
    panic!(
        "{what}: line counts differ ({} vs {})",
        actual.lines().count(),
        expected.lines().count()
    );
}

#[test]
fn full_reference_matches_golden_capture() {
    let expected = include_str!("data/reference_reports.txt");
    let actual = perfref::full_reference();
    assert_same_text(&actual, expected, "reference bundle");
}

/// The fleet bundle — a quick sharded fleet, plain and fault-armed —
/// must match the golden capture from the tree where the fleet subsystem
/// landed, byte for byte, on every build.
#[test]
fn fleet_reference_matches_golden_capture() {
    let expected = include_str!("data/fleet_reference.txt");
    let actual = perfref::fleet_full_reference();
    assert_same_text(&actual, expected, "fleet bundle");
}

fn atm_report(seed: u64, stride: bool, span: Nanos) -> (String, u64) {
    let mut sys = System::new(ChipConfig::power7_plus(seed));
    sys.set_stride(stride);
    sys.assign_all(by_name("x264").expect("catalog"));
    sys.set_mode_all(MarginMode::Atm);
    let report = sys.run(span, &mut NullRecorder);
    let fast: u64 = CoreId::all()
        .map(|id| sys.core(id).stride_fast_ticks())
        .sum();
    (format!("{report:#?}"), fast)
}

#[test]
fn stride_toggle_never_changes_a_report() {
    for seed in [3u64, 17, 42] {
        let span = Nanos::new(30_000.0);
        let (on, fast_on) = atm_report(seed, true, span);
        let (off, fast_off) = atm_report(seed, false, span);
        assert_same_text(&on, &off, "stride on vs off");
        assert!(
            fast_on > 0,
            "stride path never engaged in a steady ATM run (seed {seed})"
        );
        assert_eq!(fast_off, 0, "disabled stride must never take the fast path");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `run(a + b + c)` and `run_chunked(&[a, b, c])` are one trial split
    /// at caller-visible boundaries — the reports must be byte-identical.
    #[test]
    fn chunked_run_equals_continuous_run(
        seed in 0u64..10_000,
        a_us in 1u64..=8,
        b_us in 1u64..=8,
        c_us in 1u64..=8,
    ) {
        let build = |seed: u64| {
            let mut sys = System::new(ChipConfig::power7_plus(seed));
            sys.assign_all(by_name("x264").expect("catalog"));
            sys.set_mode_all(MarginMode::Atm);
            sys
        };
        let us = |n: u64| Nanos::new(n as f64 * 1000.0);
        let whole = build(seed).run(us(a_us + b_us + c_us), &mut NullRecorder);
        let chunked = build(seed).run_chunked(&[us(a_us), us(b_us), us(c_us)], &mut NullRecorder);
        assert_same_text(
            &format!("{chunked:#?}"),
            &format!("{whole:#?}"),
            "chunked vs continuous",
        );
    }
}
