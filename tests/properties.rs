//! Cross-crate property-based tests on the stack's physical invariants.

use power_atm::chip::{ChipConfig, MarginMode, System};
use power_atm::cpm::CoreCpmSet;
use power_atm::pdn::PdnModel;
use power_atm::silicon::{SiliconFactory, SiliconParams};
use power_atm::telemetry::NullRecorder;
use power_atm::units::{Celsius, CoreId, MegaHz, Picos, Volts, Watts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ATM equilibrium frequency is monotone non-decreasing in the CPM
    /// delay reduction, for any seed, core and plausible voltage.
    #[test]
    fn equilibrium_monotone_in_reduction(
        seed in 0u64..500,
        core_idx in 0usize..16,
        v_mv in 1150u32..1250,
    ) {
        let factory = SiliconFactory::new(SiliconParams::power7_plus(), seed);
        let silicon = factory.core(CoreId::from_flat_index(core_idx));
        let v = Volts::new(f64::from(v_mv) / 1000.0);
        let t = Celsius::new(50.0);
        let thr = Picos::new(10.0);
        let mut cpms = CoreCpmSet::calibrate(&silicon, v, t, MegaHz::new(4600.0), thr);
        let mut prev = Picos::new(f64::MAX / 2.0);
        for r in 0..=cpms.max_reduction() {
            cpms.set_reduction(r).unwrap();
            let period = cpms.equilibrium_period(&silicon, v, t, thr);
            prop_assert!(period <= prev, "period grew at reduction {r}");
            prev = period;
        }
    }

    /// Delivered core voltage is monotone decreasing in chip power and in
    /// the core's own power.
    #[test]
    fn delivered_voltage_monotone(
        p_chip in 20.0f64..250.0,
        p_core in 0.0f64..25.0,
        dp in 1.0f64..50.0,
    ) {
        let pdn = PdnModel::power7_plus();
        let base = pdn.core_voltage(Watts::new(p_chip), Watts::new(p_core));
        let more_chip = pdn.core_voltage(Watts::new(p_chip + dp), Watts::new(p_core));
        let more_core = pdn.core_voltage(Watts::new(p_chip), Watts::new(p_core + dp.min(20.0)));
        prop_assert!(more_chip < base);
        prop_assert!(more_core < base);
    }

    /// Path delay is monotone decreasing in voltage for every minted core.
    #[test]
    fn path_delay_monotone_in_voltage(
        seed in 0u64..200,
        core_idx in 0usize..16,
    ) {
        let factory = SiliconFactory::new(SiliconParams::power7_plus(), seed);
        let silicon = factory.core(CoreId::from_flat_index(core_idx));
        let t = Celsius::new(55.0);
        let mut prev = silicon.real_path_delay(Volts::new(1.00), t);
        for step in 1..=25 {
            let v = Volts::new(1.00 + f64::from(step) * 0.01);
            let d = silicon.real_path_delay(v, t);
            prop_assert!(d < prev);
            prev = d;
        }
    }

    /// Inverter chains are strictly increasing in cumulative delay for any
    /// seed.
    #[test]
    fn chain_cumulative_strictly_increasing(seed in 0u64..500) {
        let chain = power_atm::silicon::InverterChain::manufacture(seed, 4.0, 0.7);
        for i in 0..chain.len() {
            prop_assert!(chain.cumulative(i + 1) > chain.cumulative(i));
        }
    }

    /// Workload speedup is 1 at the baseline, monotone in frequency, and
    /// never exceeds the pure-frequency ratio.
    #[test]
    fn speedup_bounded_by_frequency_ratio(
        app_idx in 0usize..20,
        f_mhz in 4200.0f64..5400.0,
    ) {
        let catalog = power_atm::workloads::catalog();
        let app = &catalog[app_idx % catalog.len()];
        let base = MegaHz::new(4200.0);
        let f = MegaHz::new(f_mhz);
        let s = app.speedup(f, base);
        prop_assert!(s >= 1.0 - 1e-12);
        prop_assert!(s <= f_mhz / 4200.0 + 1e-12);
    }
}

proptest! {
    // System-level properties are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any seed, the default (preset) ATM configuration never fails
    /// while idle: manufacturers ship working chips.
    #[test]
    fn default_atm_idle_is_always_safe(seed in 0u64..1000) {
        let mut sys = System::new(ChipConfig::power7_plus(seed));
        sys.set_mode_all(MarginMode::Atm);
        let report = sys.run(power_atm::units::Nanos::new(20_000.0), &mut NullRecorder);
        prop_assert!(report.is_ok(), "seed {seed} failed at preset config");
        for c in &report.cores {
            prop_assert!(
                c.mean_freq.get() > 4350.0 && c.mean_freq.get() < 5000.0,
                "seed {seed} {}: default ATM at {}", c.core, c.mean_freq
            );
        }
    }

    /// Gating background cores never lowers (and normally raises) an ATM
    /// core's frequency: the shared-rail coupling has one sign.
    #[test]
    fn gating_siblings_never_hurts(seed in 0u64..1000) {
        let mut sys = System::new(ChipConfig::power7_plus(seed));
        let daxpy = power_atm::workloads::by_name("daxpy").unwrap().clone();
        sys.set_mode_all(MarginMode::Atm);
        sys.assign_all(&daxpy);
        let busy = sys.settle();
        for c in 1..8 {
            sys.set_mode(CoreId::new(0, c), MarginMode::Gated);
        }
        let gated = sys.settle();
        let target = CoreId::new(0, 0);
        prop_assert!(
            gated.core(target).mean_freq.get() >= busy.core(target).mean_freq.get() - 1.0
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `FailureKind::sample` is total over its whole documented domain
    /// u ∈ [0, 1]: every draw maps to a kind, the mapping is a step
    /// function with thresholds at exactly 0.4 and 0.8, and nearby draws
    /// on the same side of a threshold agree.
    #[test]
    fn failure_kind_sample_is_total_and_banded(u in 0.0f64..=1.0) {
        use power_atm::chip::FailureKind;
        let kind = FailureKind::sample(u);
        let expected = if u < 0.4 {
            FailureKind::SystemCrash
        } else if u < 0.8 {
            FailureKind::AbnormalExit
        } else {
            FailureKind::SilentDataCorruption
        };
        prop_assert_eq!(kind, expected, "u = {}", u);
        // Stability: the same draw always yields the same kind.
        prop_assert_eq!(kind, FailureKind::sample(u));
    }
}

/// The documented 40/40/20 proportions, checked exactly on a fine
/// uniform grid over [0, 1) — no sampling noise, no tolerance.
#[test]
fn failure_kind_proportions_are_40_40_20() {
    use power_atm::chip::FailureKind;
    const N: usize = 100_000;
    let mut counts = [0usize; 3];
    for i in 0..N {
        let u = i as f64 / N as f64;
        match FailureKind::sample(u) {
            FailureKind::SystemCrash => counts[0] += 1,
            FailureKind::AbnormalExit => counts[1] += 1,
            FailureKind::SilentDataCorruption => counts[2] += 1,
            FailureKind::ChipHardFail => {
                unreachable!("sample never produces the injected-only hard fail")
            }
        }
    }
    assert_eq!(counts, [N * 2 / 5, N * 2 / 5, N / 5]);
}

/// The domain boundaries of `FailureKind::sample`: the whole closed unit
/// interval is valid — including `u == 1.0`, which an inclusive-range RNG
/// draw can produce — and anything outside it is a programming error.
#[test]
fn failure_kind_sample_edges() {
    use power_atm::chip::FailureKind;
    assert_eq!(FailureKind::sample(0.0), FailureKind::SystemCrash);
    assert_eq!(FailureKind::sample(0.4), FailureKind::AbnormalExit);
    assert_eq!(FailureKind::sample(0.8), FailureKind::SilentDataCorruption);
    let just_below = 1.0_f64.next_down();
    assert_eq!(
        FailureKind::sample(just_below),
        FailureKind::SilentDataCorruption
    );
    // The closed top of the interval is total: no RNG draw can panic the
    // simulator.
    assert_eq!(FailureKind::sample(1.0), FailureKind::SilentDataCorruption);
    assert!(std::panic::catch_unwind(|| FailureKind::sample(1.0_f64.next_up())).is_err());
    assert!(std::panic::catch_unwind(|| FailureKind::sample(-0.001)).is_err());
}

// ---------------------------------------------------------------------------
// Fleet invariants: routing conservation, drain discipline, and lane-seed
// injectivity of the sharded fleet simulation.
// ---------------------------------------------------------------------------

/// A fault plan that reliably quarantines silicon: a phase failure on one
/// fixed core at every epoch's 1 µs harvest trial (20 engine ticks), so
/// the supervisor ladder climbs one strike per window and quarantines by
/// epoch five.
fn chip_killer(epochs: u32) -> power_atm::faults::FleetFaultPlan {
    use power_atm::faults::{FaultKind, FaultPlan, FaultSpec, FaultTarget, FleetFaultPlan};
    use power_atm::units::CoreId;
    let plan = FaultPlan::new("chip-killer").with(FaultSpec {
        target: FaultTarget::Core(CoreId::from_flat_index(3)),
        kind: FaultKind::PhaseFailure,
        start: 5,
        period: 20,
        repeats: epochs + 2,
        duration: 1,
    });
    FleetFaultPlan::new(plan, 1)
}

proptest! {
    // Whole-fleet runs deploy several chips each; a few random
    // configurations cover the space without dominating the suite.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Exactly-once accounting: for any seed and fleet shape, every
    /// generated request reaches precisely one terminal state —
    /// `generated = routed + shed + deferred_unserved`, and the routed
    /// total matches what the chips absorbed.
    #[test]
    fn fleet_routing_conserves_every_request(
        seed in 0u64..10_000,
        chips in 2u32..=5,
        epochs in 2u32..=5,
    ) {
        use power_atm::fleet::{FleetConfig, FleetSim};
        let cfg = FleetConfig::quick(seed).with_chips(chips).with_epochs(epochs);
        let report = FleetSim::new(cfg).expect("valid fleet").run(2);
        prop_assert!(report.routing.generated > 0);
        prop_assert!(report.conservation_holds(), "{:?}", report.routing);
        prop_assert!(report.drained_respected());
    }

    /// Drain discipline: under a campaign that quarantines cores on every
    /// chip, drained chips never receive another critical request — the
    /// last critical epoch strictly precedes the drain epoch — and the
    /// accounting still balances.
    #[test]
    fn drained_chips_never_receive_critical_requests(seed in 0u64..10_000) {
        use power_atm::fleet::{FleetConfig, FleetSim, PlacementConfig};
        let epochs = 9;
        let cfg = FleetConfig::quick(seed)
            .with_chips(4)
            .with_epochs(epochs)
            .with_faults(chip_killer(epochs))
            .with_placement(PlacementConfig {
                drain_quarantined: 1,
                ..PlacementConfig::default()
            });
        let report = FleetSim::new(cfg).expect("valid fleet").run(2);
        // Non-vacuity: the killer plan afflicts every chip, so the fleet
        // must actually drain silicon.
        prop_assert!(
            report.routing.drained_chips > 0,
            "campaign never drained a chip: {:?}",
            report.rows
        );
        prop_assert!(report.drained_respected(), "{:?}", report.rows);
        prop_assert!(report.conservation_holds(), "{:?}", report.routing);
        for row in &report.rows {
            if row.drained_from_epoch >= 0 {
                prop_assert!(row.quarantined >= 1, "drained without quarantine: {row:?}");
            }
        }
    }

    /// Energy and budget conservation under a global cap: for any seed,
    /// fleet shape, and steady budget, the per-chip picojoule rows sum
    /// exactly to the fleet total, the per-epoch largest-remainder split
    /// re-sums exactly to the global cap, and every chip's regulator
    /// satisfies its safety laws (no release while over budget, integral
    /// inside the anti-windup clamp).
    #[test]
    fn budgeted_fleet_conserves_energy_and_splits_exactly(
        seed in 0u64..10_000,
        chips in 2u32..=4,
        epochs in 2u32..=4,
        budget_w in 50u64..=400,
    ) {
        use power_atm::capping::{FleetBudget, RegulatorConfig};
        use power_atm::fleet::{FleetConfig, FleetSim};
        let cap_mw = budget_w * 1_000;
        let cfg = FleetConfig::quick(seed)
            .with_chips(chips)
            .with_epochs(epochs)
            .with_budget(FleetBudget::steady(cap_mw));
        let report = FleetSim::new(cfg).expect("valid fleet").run(2);
        prop_assert!(report.energy.total_pj > 0, "no energy metered");
        prop_assert!(report.energy_conserved(), "picojoule books out of balance");
        prop_assert_eq!(report.caps.len(), report.rows.len());
        let clamp = RegulatorConfig::standard().integral_clamp_mwe();
        for cap in &report.caps {
            prop_assert_eq!(cap.epochs, epochs, "a chip skipped regulation");
            prop_assert!(cap.never_released_over_budget(), "{}", cap);
            prop_assert!(cap.integral_bounded(clamp), "{}", cap);
        }
        // Exact apportionment: the shares in force each epoch re-sum to
        // the global cap, to the milliwatt.
        for e in 0..epochs as usize {
            let total: u64 = report.caps.iter().map(|c| c.cap_mw[e]).sum();
            prop_assert_eq!(total, cap_mw, "split leaked at epoch {}", e);
        }
    }

    /// Lane-seed injectivity: per-chip sub-stream seeds are collision-free
    /// across four streams and 1024-chip fleets, for any root seed.
    #[test]
    fn lane_seeds_are_collision_free_up_to_1024_chips(root in 0u64..u64::MAX) {
        use power_atm::fleet::lane_seed;
        let mut seen = std::collections::HashSet::with_capacity(4 * 1024);
        for stream in 0..4u32 {
            for lane in 0..1024u32 {
                prop_assert!(
                    seen.insert(lane_seed(root, stream, lane)),
                    "seed collision at root {root}, stream {stream}, lane {lane}"
                );
            }
        }
    }
}
