//! Determinism suite for the sharded fleet simulation.
//!
//! The fleet contract is the serving contract lifted one level: a
//! [`FleetReport`] is a pure function of `(FleetConfig, seed)` — the
//! worker count the run is sharded over, the stride fast path, and
//! repeated execution must all be invisible in the bytes. The 64-chip
//! sweep below is the acceptance gate for the fleet subsystem.

use power_atm::faults::{droop_storm, FleetFaultPlan};
use power_atm::fleet::{FleetConfig, FleetReport, FleetSim};

fn run(cfg: &FleetConfig, workers: usize) -> FleetReport {
    FleetSim::new(cfg.clone())
        .expect("valid fleet")
        .run(workers)
}

/// The tentpole acceptance test: a 64-chip fleet produces byte-identical
/// reports across repeated runs and across worker counts k ∈ {1, 2, 8}.
/// `{:#?}` rendering makes equality a byte-identity witness, and the
/// serial run (k = 1) is the reference.
#[test]
fn sixty_four_chip_fleet_is_byte_identical_across_workers() {
    let cfg = FleetConfig::standard(42);
    let serial = run(&cfg, 1);
    assert!(serial.routing.generated > 10_000, "fleet barely loaded");
    assert!(serial.conservation_holds(), "{:?}", serial.routing);
    let serial_text = format!("{serial:#?}");
    for workers in [1usize, 2, 8] {
        let again = run(&cfg, workers);
        assert_eq!(serial, again, "k = {workers} diverged");
        assert_eq!(
            serial_text,
            format!("{again:#?}"),
            "k = {workers} bytes diverged"
        );
    }
}

/// The stride fast path is a per-chip optimization; at fleet scale it
/// must still be a pure no-op on the results.
#[test]
fn stride_toggle_never_changes_a_fleet_report() {
    let on = run(&FleetConfig::quick(7), 2);
    let off = run(&FleetConfig::quick(7).with_stride(false), 2);
    assert_eq!(on, off);
}

/// Fault hooks are resolved per chip before the epoch loop, so an armed
/// fleet campaign keeps the same worker-count independence.
#[test]
fn faulted_fleets_stay_worker_count_independent() {
    let cfg = FleetConfig::quick(11).with_faults(FleetFaultPlan::new(droop_storm(), 2));
    let serial = run(&cfg, 1);
    for workers in [2usize, 8] {
        assert_eq!(serial, run(&cfg, workers), "faulted k = {workers}");
    }
    assert!(serial.conservation_holds());
}

/// A drifting, adapting fleet keeps the determinism contract: every
/// chip ages on its own schedule and runs the full online
/// recharacterization loop, and the [`FleetReport`] — including the
/// per-chip [`AdaptReport`](power_atm::adapt::AdaptReport)s — is still
/// byte-identical across runs and worker counts k ∈ {1, 2, 8}.
#[test]
fn drifting_adaptive_fleet_is_byte_identical_across_workers() {
    use power_atm::adapt::AdaptConfig;
    use power_atm::silicon::DriftModel;

    let cfg = FleetConfig::quick(42)
        .with_drift(DriftModel::standard(42))
        .with_adapt(AdaptConfig::standard());
    let serial = run(&cfg, 1);
    assert_eq!(
        serial.adapt.len(),
        serial.rows.len(),
        "one adapter account per chip"
    );
    assert!(
        serial.adapt.iter().any(|a| a.observations > 0),
        "the adapters must actually observe the fleet"
    );
    let serial_text = format!("{serial:#?}");
    for workers in [1usize, 2, 8] {
        let again = run(&cfg, workers);
        assert_eq!(serial, again, "k = {workers} diverged");
        assert_eq!(
            serial_text,
            format!("{again:#?}"),
            "k = {workers} bytes diverged"
        );
    }
    // Per-chip drift rebasing must actually differentiate the chips.
    assert!(serial.conservation_holds());
}

/// A fleet under a global power budget keeps the determinism contract:
/// the per-epoch largest-remainder split, every chip's integral
/// regulator, and the merged picojoule account are all byte-identical
/// across runs and worker counts k ∈ {1, 2, 8} — and the energy books
/// balance exactly.
#[test]
fn budgeted_fleet_is_byte_identical_across_workers() {
    use power_atm::capping::FleetBudget;

    // 200 W over 8 chips: ~25 W per chip, tight enough that regulators
    // actually throttle.
    let cfg = FleetConfig::quick(42).with_budget(FleetBudget::steady(200_000));
    let serial = run(&cfg, 1);
    assert_eq!(
        serial.caps.len(),
        serial.rows.len(),
        "one cap account per chip"
    );
    assert!(
        serial.caps.iter().any(|c| c.throttle_steps > 0),
        "the global budget never made a regulator throttle"
    );
    assert!(serial.energy.total_pj > 0, "the fleet metered no energy");
    assert!(
        serial.energy_conserved(),
        "per-chip picojoules do not sum to the fleet total"
    );
    for cap in &serial.caps {
        assert!(cap.never_released_over_budget(), "{cap}");
    }
    let serial_text = format!("{serial:#?}");
    for workers in [1usize, 2, 8] {
        let again = run(&cfg, workers);
        assert_eq!(serial, again, "k = {workers} diverged");
        assert_eq!(
            serial_text,
            format!("{again:#?}"),
            "k = {workers} bytes diverged"
        );
    }
    assert!(serial.conservation_holds());
}

/// Different fleet seeds must reach the silicon lots, the traffic, and
/// therefore the account — seeds are not cosmetic.
#[test]
fn fleet_seed_reaches_every_layer() {
    let a = run(&FleetConfig::quick(1), 2);
    let b = run(&FleetConfig::quick(2), 2);
    assert_ne!(a.rows[0].lot, b.rows[0].lot, "lots ignore the seed");
    assert_ne!(a, b);
}
