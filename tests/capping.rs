//! Serving under a power cap: the regulator's acceptance story.
//!
//! Three contracts, checked end to end through the serving loop:
//!
//! * **Convergence** — a 30 % cap step engages the integral regulator,
//!   which settles at a fixed throttle depth (no limit cycle) while the
//!   anti-windup integral stays inside its clamp.
//! * **Degradation order** — the throttle ladder sheds background
//!   capacity first: under a binding cap the critical stream sheds
//!   nothing and keeps its SLO while background requests bear the cut.
//! * **Supervisor precedence** — a release proposed in the same epoch
//!   as a CPM rollback is suppressed, never re-raising frequency on a
//!   rolled-back core; the release recurs on the next clean epoch.

use power_atm::capping::{CapConfig, PowerBudget, RegulatorConfig};
use power_atm::chip::{ChipConfig, FailureKind, System};
use power_atm::core::charact::CharactConfig;
use power_atm::core::{AtmManager, Governor};
use power_atm::serve::{ArrivalPattern, ServeConfig, ServeReport, ServeSim, StreamSpec};
use power_atm::telemetry::NullRecorder;
use power_atm::units::Nanos;
use power_atm::workloads::by_name;

const SEED: u64 = 42;
const SLO_NS: u64 = 250_000_000;

fn streams() -> Vec<StreamSpec> {
    vec![
        StreamSpec::critical(
            by_name("squeezenet").expect("catalog"),
            ArrivalPattern::Poisson {
                mean_gap: 150_000_000,
            },
            SLO_NS,
        ),
        StreamSpec::background(
            by_name("x264").expect("catalog"),
            ArrivalPattern::Poisson {
                mean_gap: 40_000_000,
            },
        ),
        StreamSpec::background(
            by_name("lu_cb").expect("catalog"),
            ArrivalPattern::Poisson {
                mean_gap: 30_000_000,
            },
        ),
    ]
}

fn sim(seed: u64, budget: PowerBudget) -> ServeSim {
    let sys = System::new(ChipConfig::power7_plus(seed));
    let mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
    // 16 epochs: enough runway past the cap step for the integral to
    // settle and hold a visible converged tail.
    let cfg = ServeConfig::builder(seed)
        .epochs(16)
        .epoch_ns(200_000_000)
        .chip_trial(Nanos::new(1_000.0))
        .build()
        .expect("valid config");
    let mut sim = ServeSim::new(mgr, cfg, streams()).expect("valid serving setup");
    sim.set_cap(CapConfig::standard(budget)).expect("valid cap");
    sim
}

fn run(seed: u64, budget: PowerBudget) -> ServeReport {
    sim(seed, budget).run(2, &mut NullRecorder)
}

/// Mean measured chip power under a cap that never binds, milliwatts.
fn baseline_mw(seed: u64) -> u64 {
    let report = run(seed, PowerBudget::unlimited());
    let cap = report.cap.as_ref().expect("capping was on");
    assert_eq!(cap.final_depth, 0, "an unlimited cap must never bind");
    cap.power_mw.iter().sum::<u64>() / cap.power_mw.len().max(1) as u64
}

#[test]
fn thirty_percent_cap_step_converges_without_limit_cycle() {
    let base_mw = baseline_mw(SEED);
    let report = run(
        SEED,
        PowerBudget::step_down(base_mw * 2, base_mw * 7 / 10, 3),
    );
    let cap = report.cap.as_ref().expect("capping was on");
    assert!(
        cap.throttle_steps > 0,
        "a 30 % cap cut must engage the regulator: {cap}"
    );
    assert!(
        cap.converged(4),
        "depth still moving at the end of the run: {:?}",
        cap.depth
    );
    assert!(cap.never_released_over_budget(), "released while over");
    assert!(
        cap.integral_bounded(RegulatorConfig::standard().integral_clamp_mwe()),
        "anti-windup integral escaped its clamp ({} mWe)",
        cap.max_integral_mwe
    );
    // Before the step the doubled cap must not bind.
    assert_eq!(
        cap.depth[0], 0,
        "throttled before the step: {:?}",
        cap.depth
    );
}

#[test]
fn background_sheds_first_and_critical_keeps_its_slo() {
    let base_mw = baseline_mw(SEED);
    let capped = run(SEED, PowerBudget::steady(base_mw * 7 / 10));
    let cap = capped.cap.as_ref().expect("capping was on");
    assert!(cap.throttle_steps > 0, "the cap must bind: {cap}");

    let crit = capped.critical();
    assert!(crit.completed > 0, "critical stream starved under the cap");
    assert_eq!(
        crit.shed, 0,
        "the ladder must shed background before critical"
    );
    assert!(
        crit.slo_met(),
        "critical p99 {} ns exceeds SLO {} ns under a 30 % cap",
        crit.p99_ns,
        crit.slo_ns
    );
    // The energy account reflects the throttle: capped mean power is
    // below the uncapped baseline.
    let mean = cap.power_mw.iter().sum::<u64>() / cap.power_mw.len().max(1) as u64;
    assert!(
        mean < base_mw,
        "throttling did not reduce mean power: {mean} vs {base_mw} mW"
    );
}

/// Satellite: supervisor rollbacks outrank the regulator. The cap loosens
/// at exactly the epoch a rollback fires, so the regulator proposes a
/// release in that epoch — which must be suppressed (depth never drops on
/// a rollback epoch) and re-proposed on the next clean epoch.
#[test]
fn release_in_a_rollback_epoch_is_suppressed_then_recurs() {
    const FAIL_EPOCH: u32 = 6;
    let base_mw = baseline_mw(SEED);
    // Tight from epoch 0 (winds up depth), loose from FAIL_EPOCH on.
    let budget = PowerBudget::price_curve(vec![(0, base_mw * 7 / 10), (FAIL_EPOCH, base_mw * 2)]);
    let clean = run(SEED, budget.clone());
    let fail_core = clean.critical_core;

    let build = || {
        let mut s = sim(SEED, budget.clone());
        s.inject_failure(FAIL_EPOCH, fail_core, FailureKind::SystemCrash);
        s
    };
    let report = build().run(1, &mut NullRecorder);
    assert!(
        report
            .transitions
            .iter()
            .any(|t| t.epoch == FAIL_EPOCH && t.action.contains("rollback")),
        "no rollback at epoch {FAIL_EPOCH}: {:?}",
        report.transitions
    );

    let cap = report.cap.as_ref().expect("capping was on");
    let e = FAIL_EPOCH as usize;
    assert!(
        cap.depth[e - 1] > 0,
        "the tight phase never wound up depth: {:?}",
        cap.depth
    );
    assert!(
        cap.depth[e] >= cap.depth[e - 1],
        "regulator released in the rollback epoch: {:?}",
        cap.depth
    );
    assert!(
        cap.releases_suppressed >= 1,
        "the loosened cap must have proposed a release to suppress: {cap}"
    );
    assert!(
        cap.depth.iter().skip(e + 1).any(|&d| d < cap.depth[e]),
        "the suppressed release never recurred: {:?}",
        cap.depth
    );
    assert!(cap.never_released_over_budget());

    // The whole ordeal — rollback, suppression, deferred release — stays
    // byte-deterministic across worker counts.
    let again = build().run(4, &mut NullRecorder);
    assert_eq!(
        format!("{report:#?}"),
        format!("{again:#?}"),
        "worker count leaked into the capped+faulted report"
    );
}

/// Tightening the cap never increases mean power: the frontier is
/// monotone where the regulator can actually track it.
#[test]
fn deeper_caps_mean_less_power() {
    let base_mw = baseline_mw(SEED);
    let mut prev = u64::MAX;
    for pct in [100u64, 70, 55] {
        let report = run(SEED, PowerBudget::steady(base_mw * pct / 100));
        let cap = report.cap.as_ref().expect("capping was on");
        let mean = cap.power_mw.iter().sum::<u64>() / cap.power_mw.len().max(1) as u64;
        assert!(
            mean <= prev,
            "mean power rose when the cap tightened to {pct} %: {mean} vs {prev} mW"
        );
        assert!(
            report.energy.total_pj > 0,
            "energy account empty at {pct} %"
        );
        prev = mean;
    }
}
