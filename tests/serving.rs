//! Serving-layer contract tests: the two properties `atm-serve`
//! guarantees by construction.
//!
//! * **Determinism** — a fixed seed yields a byte-identical
//!   [`ServeReport`] across independent runs *and* across arrival-worker
//!   counts (parallelism only pre-generates per-stream traces).
//! * **Degradation** — an injected timing failure mid-run triggers CPM
//!   rollback and critical re-placement, and the critical stream's p99
//!   returns below its SLO in steady state after the recovery.

use power_atm::chip::{ChipConfig, FailureKind, System};
use power_atm::core::charact::CharactConfig;
use power_atm::core::{AtmManager, Governor};
use power_atm::serve::{ArrivalPattern, ServeConfig, ServeReport, ServeSim, StreamSpec};
use power_atm::telemetry::NullRecorder;
use power_atm::units::CoreId;
use power_atm::workloads::by_name;

const SEED: u64 = 42;
/// 250 ms p99 budget for ~41 ms inferences at moderate load: queueing
/// spikes of up to ~5 clustered arrivals fit inside the budget.
const SLO_NS: u64 = 250_000_000;

fn streams() -> Vec<StreamSpec> {
    let sq = by_name("squeezenet").expect("catalog");
    let x264 = by_name("x264").expect("catalog");
    let lu = by_name("lu_cb").expect("catalog");
    vec![
        StreamSpec::critical(
            sq,
            ArrivalPattern::Poisson {
                mean_gap: 150_000_000,
            },
            SLO_NS,
        ),
        StreamSpec::background(
            x264,
            ArrivalPattern::Bursty {
                mean_gap: 20_000_000,
                burst_gap: 5_000_000,
                phase: 100_000_000,
            },
        ),
        StreamSpec::background(
            lu,
            ArrivalPattern::Poisson {
                mean_gap: 15_000_000,
            },
        ),
    ]
}

/// A fresh sim over a freshly deployed manager (chip seed = arrival seed).
fn sim(seed: u64) -> ServeSim {
    let sys = System::new(ChipConfig::power7_plus(seed));
    let mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
    ServeSim::new(mgr, ServeConfig::quick(seed), streams()).expect("valid serving setup")
}

fn run(seed: u64, workers: usize) -> ServeReport {
    sim(seed).run(workers, &mut NullRecorder)
}

#[test]
fn same_seed_same_report_byte_for_byte() {
    let a = run(SEED, 1);
    let b = run(SEED, 1);
    assert!(a.completed > 0, "the run must actually serve traffic");
    assert_eq!(a, b);
}

#[test]
fn worker_count_never_changes_the_report() {
    let reference = run(SEED, 1);
    for workers in [2, 4, 8] {
        assert_eq!(reference, run(SEED, workers), "workers = {workers}");
    }
}

#[test]
fn different_seeds_diverge() {
    // Sanity that the equality above is meaningful.
    assert_ne!(run(SEED, 1), run(SEED + 1, 1));
}

#[test]
fn critical_slo_holds_under_clean_serving() {
    let report = run(SEED, 2);
    let crit = report.critical();
    assert!(crit.completed > 10, "critical stream saw traffic");
    assert!(
        crit.slo_met(),
        "critical p99 {} ns exceeds SLO {} ns",
        crit.p99_ns,
        crit.slo_ns
    );
    // Background streams actually ran too.
    assert!(report.completed > crit.completed);
}

#[test]
fn injected_failure_triggers_rollback_and_recovery() {
    const FAIL_EPOCH: u32 = 3;
    let mut s = sim(SEED);
    // Fail the critical core itself: worst case for the SLO.
    let clean = run(SEED, 1);
    let crit_core = clean.critical_core;
    s.inject_failure(FAIL_EPOCH, crit_core, FailureKind::SystemCrash);
    let report = s.run(1, &mut NullRecorder);

    // The degradation machinery reacted, at the right time, with rollback.
    let rb: Vec<_> = report
        .transitions
        .iter()
        .filter(|t| t.action.contains("rollback"))
        .collect();
    assert!(
        rb.iter().any(|t| t.epoch == FAIL_EPOCH),
        "no rollback at epoch {FAIL_EPOCH}: {:?}",
        report.transitions
    );
    assert!(
        rb[0].action.contains(&crit_core.to_string()),
        "rollback names the failed core: {}",
        rb[0].action
    );

    // Re-placement happened: the post-transition critical core is the
    // re-ranked fastest core, and the report's final core matches it.
    let last = report.transitions.last().expect("at least one transition");
    assert_eq!(report.critical_core, last.critical_core);

    // Steady state after recovery: every later epoch with critical
    // traffic keeps p99 within the SLO.
    let crit = report.critical();
    let after: Vec<u64> = crit
        .epoch_p99_ns
        .iter()
        .copied()
        .skip(FAIL_EPOCH as usize + 2)
        .filter(|&p| p > 0)
        .collect();
    assert!(!after.is_empty(), "critical stream kept serving");
    for p99 in &after {
        assert!(
            *p99 <= SLO_NS,
            "post-recovery epoch p99 {p99} ns exceeds SLO {SLO_NS} ns"
        );
    }
    // And the report as a whole stays deterministic under injection.
    let mut s2 = sim(SEED);
    s2.inject_failure(FAIL_EPOCH, crit_core, FailureKind::SystemCrash);
    assert_eq!(report, s2.run(4, &mut NullRecorder));
}

/// Serving resilience under a flapping core: with the supervisor
/// attached, a core that fails epoch after epoch climbs the strike
/// ladder — rollback, safe mode, and finally quarantine — while the
/// critical stream is re-placed onto healthy silicon and keeps serving.
/// The whole ordeal stays byte-deterministic across reruns and worker
/// counts.
#[test]
fn flapping_core_ends_quarantined_and_critical_stream_is_replaced() {
    use power_atm::core::{MarginSupervisor, SupervisorConfig};

    let clean = run(SEED, 1);
    // Flap the critical core itself: the supervisor must evict the
    // stream's own home.
    let flapper = clean.critical_core;
    let build = || {
        let mut s = sim(SEED);
        s.set_supervisor(MarginSupervisor::new(SupervisorConfig::default()));
        for epoch in 1..=6 {
            s.inject_failure(epoch, flapper, FailureKind::SystemCrash);
        }
        s
    };

    let report = build().run(1, &mut NullRecorder);
    let ladder: Vec<&str> = report
        .transitions
        .iter()
        .map(|t| t.action.as_str())
        .filter(|a| a.contains("supervisor"))
        .collect();
    assert!(
        ladder
            .iter()
            .any(|a| a.contains("safe mode") && a.contains(&flapper.to_string())),
        "flapping core never reached safe mode: {ladder:?}"
    );
    assert!(
        ladder
            .iter()
            .any(|a| a.contains("quarantine") && a.contains(&flapper.to_string())),
        "flapping core never quarantined: {ladder:?}"
    );

    // The critical stream found a new home and kept serving after the
    // quarantine epoch.
    assert_ne!(report.critical_core, flapper);
    let after: Vec<u64> = report
        .critical()
        .epoch_p99_ns
        .iter()
        .copied()
        .skip(6)
        .filter(|&p| p > 0)
        .collect();
    assert!(
        !after.is_empty(),
        "critical stream stopped serving after the quarantine"
    );

    // Byte-identical across reruns and worker counts.
    for workers in [2, 4, 8] {
        assert_eq!(
            report,
            build().run(workers, &mut NullRecorder),
            "workers = {workers}"
        );
    }
}

#[test]
fn failures_on_background_cores_leave_the_critical_core_alone() {
    let clean = run(SEED, 1);
    let bg_core = CoreId::all()
        .find(|c| c.proc_id().index() == 0 && *c != clean.critical_core)
        .expect("socket 0 has eight cores");
    let mut s = sim(SEED);
    s.inject_failure(2, bg_core, FailureKind::AbnormalExit);
    let report = s.run(1, &mut NullRecorder);
    assert!(report
        .transitions
        .iter()
        .any(|t| t.epoch == 2 && t.action.contains("rollback")));
    // The critical stream still meets its SLO.
    assert!(report.critical().slo_met());
}
