//! Acceptance suite for the online recharacterization subsystem
//! (`atm-adapt`): the drifting-lot experiment.
//!
//! Three properties close the loop:
//!
//! 1. **Learning** — on a drifting silicon lot, the RLS predictor's
//!    per-window RMS error shrinks monotonically-on-average across
//!    recharacterization windows ([`AdaptReport::error_shrinks`]).
//! 2. **Safety under adaptation** — the critical stream's p99 stays
//!    within its SLO during every epoch a re-tighten episode fires.
//! 3. **The ladder outranks the adapter** — a deliberately bad
//!    re-tighten (stale ceiling restored onto aged silicon) fails like
//!    any other margin violation and rides the supervisor's strike
//!    ladder: rollback, probation, and a standing gate that keeps the
//!    adapter's hands off the core until probation clears.
//!
//! A fourth, transversal property — byte-identical [`AdaptReport`]s
//! across runs and worker counts — lives in `tests/determinism.rs`
//! (serving) and `tests/fleet.rs` (fleet), keeping each determinism
//! suite next to the layer it covers.
//!
//! [`AdaptReport`]: power_atm::adapt::AdaptReport
//! [`AdaptReport::error_shrinks`]: power_atm::adapt::AdaptReport::error_shrinks

use std::collections::BTreeSet;

use power_atm::adapt::{AdaptConfig, OnlineAdapter, OnlineEstimator, RetightenPolicy};
use power_atm::chip::{ChipConfig, MarginMode, System};
use power_atm::core::charact::CharactConfig;
use power_atm::core::{AtmManager, Governor, MarginSupervisor, SupervisorAction, SupervisorConfig};
use power_atm::serve::{ArrivalPattern, ServeConfig, ServeReport, ServeSim, StreamSpec};
use power_atm::silicon::DriftModel;
use power_atm::telemetry::NullRecorder;
use power_atm::units::{CoreId, Nanos};
use power_atm::workloads::{by_name, voltage_virus};

const SEED: u64 = 42;
/// Same p99 budget as the serving suite: queueing spikes of a few
/// clustered ~41 ms inferences fit inside 250 ms.
const SLO_NS: u64 = 250_000_000;

fn streams() -> Vec<StreamSpec> {
    let sq = by_name("squeezenet").expect("catalog");
    let x264 = by_name("x264").expect("catalog");
    vec![
        StreamSpec::critical(
            sq,
            ArrivalPattern::Poisson {
                mean_gap: 150_000_000,
            },
            SLO_NS,
        ),
        StreamSpec::background(
            x264,
            ArrivalPattern::Poisson {
                mean_gap: 40_000_000,
            },
        ),
    ]
}

/// A drifting-lot serving run: standard drift, standard adaptation,
/// enough epochs for several recharacterization windows. The
/// conservative governor deploys one CPM step below the validated
/// ceiling, so the adapter has real margin to reclaim once its
/// confidence gate clears.
fn drifting_run(seed: u64, workers: usize) -> ServeReport {
    let sys = System::new(ChipConfig::power7_plus(seed));
    let mgr = AtmManager::deploy(sys, Governor::Conservative, &CharactConfig::quick());
    let cfg = ServeConfig::builder(seed)
        .epochs(24)
        .epoch_ns(200_000_000)
        .chip_trial(Nanos::new(1_000.0))
        .build()
        .expect("valid config");
    let mut sim = ServeSim::new(mgr, cfg, streams()).expect("valid serving setup");
    sim.set_drift(DriftModel::standard(seed));
    sim.set_adapter(Box::new(OnlineAdapter::new(AdaptConfig::standard())));
    sim.run(workers, &mut NullRecorder)
}

/// Property 1: the estimator actually learns the drifting lot — window
/// RMS error shrinks monotonically-on-average, and the loop's account
/// shows real activity (observations, closed windows).
#[test]
fn drifting_lot_predictor_error_shrinks_across_windows() {
    let report = drifting_run(SEED, 2);
    assert!(report.completed > 0, "the run must actually serve traffic");
    let adapt = report.adapt.as_ref().expect("adaptation was on");
    assert!(adapt.observations > 0, "harvests must feed the estimator");
    assert!(
        adapt.windows.len() >= 3,
        "24 epochs / 4-epoch windows must close several windows, got {}",
        adapt.windows.len()
    );
    assert!(
        adapt.error_shrinks(),
        "window RMS must shrink on average: {:?}",
        adapt.windows
    );
    let first = adapt.windows.first().unwrap().rms_milli_mhz;
    let last = adapt.final_rms_milli_mhz().unwrap();
    assert!(last < first, "final RMS {last} not below initial {first}");
}

/// Property 2: adaptation never costs the critical stream its SLO — in
/// every epoch a re-tighten episode fired, the critical per-epoch p99
/// stays within budget (and the stream's overall SLO accounting holds).
#[test]
fn critical_p99_stays_within_slo_during_retighten_episodes() {
    let report = drifting_run(SEED, 2);
    let critical = report.critical();
    let episodes: Vec<u32> = report
        .transitions
        .iter()
        .filter(|t| t.action == "adapter re-tighten")
        .map(|t| t.epoch)
        .collect();
    assert!(
        !episodes.is_empty(),
        "the conservative deployment leaves margin, so at least one \
         episode must fire once confidence builds"
    );
    let adapt = report.adapt.as_ref().expect("adaptation was on");
    assert!(adapt.retightens >= 1, "episodes imply re-tightened cores");
    for &epoch in &episodes {
        let p99 = critical.epoch_p99_ns[epoch as usize];
        assert!(
            p99 <= SLO_NS,
            "epoch {epoch} re-tightened with critical p99 {p99} > SLO {SLO_NS}"
        );
    }
    assert!(
        critical.slo_met(),
        "critical stream missed its SLO: {} violations",
        critical.slo_violations
    );
}

/// Property 3: a deliberately bad re-tighten rides the strike ladder.
///
/// A core backed off to the static baseline is re-tightened straight to
/// its deployment-day ceiling by the reckless recipe — but the silicon
/// has aged far past that characterization, so the restored margin fails
/// like any other violation: the supervisor rolls the core back, puts it
/// on probation, and the policy's standing gate keeps the adapter away
/// until probation clears.
#[test]
fn bad_retighten_is_caught_by_the_supervisor() {
    let sys = System::new(ChipConfig::power7_plus(7));
    let mut mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());

    // The most aggressively fine-tuned core has the most margin to lose.
    // Arm it the way a serving posture would: ATM mode, stressing
    // workload.
    let victim = CoreId::all()
        .max_by_key(|&c| mgr.system().core(c).reduction())
        .expect("cores exist");
    let deployed = mgr.system().core(victim).reduction();
    assert!(deployed > 0, "deployment fine-tunes the victim");
    mgr.system_mut().set_mode(victim, MarginMode::Atm);
    mgr.system_mut().assign(victim, voltage_virus());

    // A conservative operator backed the core off to the static
    // baseline; meanwhile the lot aged far past deployment day.
    mgr.system_mut()
        .set_reduction(victim, 0)
        .expect("loosening is always valid");
    mgr.system_mut()
        .apply_drift(&DriftModel::aggressive(7), 500);

    // Control: the backed-off core survives the aged silicon — whatever
    // fails after the re-tighten is the re-tighten's doing.
    for _ in 0..20 {
        let chip = mgr
            .system_mut()
            .run(Nanos::new(50_000.0), &mut NullRecorder);
        assert!(
            chip.failure.is_none_or(|f| f.core != victim),
            "the backed-off core must be safe on this lot"
        );
    }
    let _ = mgr.system_mut().drain_events();

    let mut sup = MarginSupervisor::new(SupervisorConfig::default());
    sup.attach(mgr.system());

    // The reckless recipe passes every gate and restores the stale
    // ceiling in one episode.
    let cfg = AdaptConfig::reckless();
    let mut policy = RetightenPolicy::new();
    let estimator = OnlineEstimator::new(cfg.forgetting_milli);
    let picked = policy.decide(&cfg, 0, 0, &estimator, &[victim], &BTreeSet::new());
    assert_eq!(picked, vec![victim], "nothing gates the reckless recipe");
    let restored = mgr.retighten_core(victim, cfg.retighten_steps, &mut NullRecorder);
    assert_eq!(restored, deployed, "ceiling is the validated deployment");

    // Aged silicon at deployment-day tuning under a stressing workload:
    // the margin violation manifests as a real failure.
    let mut failed = false;
    for _ in 0..40 {
        let chip = mgr
            .system_mut()
            .run(Nanos::new(50_000.0), &mut NullRecorder);
        if chip.failure.is_some_and(|f| f.core == victim) {
            failed = true;
            break;
        }
    }
    assert!(failed, "the stale ceiling must fail on aged silicon");

    // The supervisor catches it like any other failure: rollback, then
    // probation.
    let events = mgr.system_mut().drain_events();
    let actions = sup.observe_window(mgr.system(), &events);
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, SupervisorAction::Rollback { core, .. } if *core == victim)),
        "expected a rollback on {victim}, got {actions:?}"
    );
    let _ = mgr.apply_supervisor_actions(&actions, &mut NullRecorder);
    assert!(sup.on_probation(victim), "the core must land on probation");
    assert!(
        mgr.system().core(victim).reduction() < deployed,
        "the rollback must undo part of the bad re-tighten"
    );
    assert!(mgr.rollback_override(victim) > 0, "the override is live");

    // The standing gate now blocks the adapter, reckless or not; the
    // live rollback also caps the ceiling, so even a direct re-tighten
    // cannot climb back.
    let blocked: BTreeSet<CoreId> = [victim].into_iter().collect();
    assert!(
        policy
            .decide(&cfg, 1, 0, &estimator, &[victim], &blocked)
            .is_empty(),
        "probation must gate the policy"
    );
    let current = mgr.system().core(victim).reduction();
    assert_eq!(
        mgr.retighten_core(victim, cfg.retighten_steps, &mut NullRecorder),
        current,
        "a live rollback owns the gap — re-tightening must not reclaim it"
    );
}
