//! Acceptance suite for the recovery subsystem: resume identity,
//! chip-failure failover, and fault-campaign bisection.
//!
//! The contract under test is the resume identity
//!
//! ```text
//! run(0..T)  ≡  run(0..k); restore(checkpoint); run(k..T)      (byte-for-byte)
//! ```
//!
//! held across every scenario the fleet can be configured into (steady,
//! fault-armed, adaptive, power-capped), across worker counts
//! k ∈ {1, 2, 8}, and — for the scenarios the golden captures pin —
//! against the checked-in `tests/data/fleet_reference.txt` bytes. On top
//! of it ride the failover laws (a hard-failed chip's batches are
//! retried under a bounded backoff ladder while the exactly-once account
//! keeps balancing) and the bisection driver (a seeded multi-fault
//! campaign minimizes to exactly its known trigger).

use power_atm::adapt::AdaptConfig;
use power_atm::capping::FleetBudget;
use power_atm::faults::{
    chip_killer, droop_storm, FaultKind, FaultPlan, FaultSpec, FaultTarget, FleetFaultPlan,
};
use power_atm::fleet::{FailoverConfig, FleetConfig, FleetReport, FleetRun, FleetSim};
use power_atm::recovery::{bisect, BisectConfig, Snapshot};
use proptest::prelude::*;

/// The four managed-state shapes the checkpoint machinery must carry:
/// plain queues, fault hooks mid-campaign, online adapters mid-probe,
/// and a power regulator with a live integral term.
fn scenario(which: usize, seed: u64) -> FleetConfig {
    let base = FleetConfig::quick(seed);
    match which % 4 {
        0 => base,
        1 => base.with_faults(FleetFaultPlan::new(droop_storm(), 2)),
        2 => base.with_adapt(AdaptConfig::standard()),
        _ => base.with_budget(FleetBudget::steady(200_000)),
    }
}

fn scenario_name(which: usize) -> &'static str {
    ["steady", "faulted", "adaptive", "capped"][which % 4]
}

/// Runs `cfg` three ways — one shot, steppable, and
/// checkpoint-at-`k`/restore/replay — and demands byte-identical reports
/// from all three.
fn assert_resume_identity(cfg: &FleetConfig, workers: usize, at: u32, label: &str) {
    let direct = FleetSim::new(cfg.clone())
        .expect("valid fleet")
        .run(workers);

    let mut run = FleetSim::new(cfg.clone())
        .expect("valid fleet")
        .start(workers);
    while run.epoch() < at {
        run.step_epoch(workers);
    }
    let sealed = Snapshot::seal(run.checkpoint());
    while !run.done() {
        run.step_epoch(workers);
    }
    let stepped = run.finish();
    assert_eq!(
        format!("{direct:#?}"),
        format!("{stepped:#?}"),
        "{label}: stepping diverged from the one-shot run"
    );

    let mut replay: FleetRun = sealed.state().expect("sealed in-process").thaw();
    assert_eq!(
        replay.epoch(),
        at,
        "{label}: checkpoint taken at the wrong epoch"
    );
    while !replay.done() {
        replay.step_epoch(workers);
    }
    let resumed = replay.finish();
    assert_eq!(
        format!("{direct:#?}"),
        format!("{resumed:#?}"),
        "{label}: resume from epoch {at} diverged"
    );
}

/// The tentpole acceptance matrix: every scenario × k ∈ {1, 2, 8},
/// resumed from a mid-run checkpoint, byte-identical to the straight run.
#[test]
fn resume_identity_holds_for_every_scenario_and_worker_count() {
    for which in 0..4 {
        let cfg = scenario(which, 42);
        for workers in [1usize, 2, 8] {
            let label = format!("{} k={workers}", scenario_name(which));
            assert_resume_identity(&cfg, workers, 2, &label);
        }
    }
}

/// Resumed runs of the golden scenarios must still land exactly on the
/// checked-in capture — the checkpoint cannot smuggle in even one byte.
#[test]
fn resumed_runs_match_the_golden_capture() {
    let golden = include_str!("data/fleet_reference.txt");
    for (cfg, label) in [
        (scenario(0, 42), "steady seed=42"),
        (scenario(1, 7), "faulted seed=7"),
    ] {
        let mut run = FleetSim::new(cfg).expect("valid fleet").start(2);
        run.step_epoch(2);
        let cp = run.checkpoint();
        let mut replay = cp.thaw();
        while !replay.done() {
            replay.step_epoch(2);
        }
        let rendered = format!("{:#?}\n", replay.finish());
        assert!(
            golden.contains(&rendered),
            "{label}: resumed report is not the golden capture"
        );
    }
}

/// `restore` must rewind a run that has already moved on: step past the
/// checkpoint, rewind, replay — same bytes as never having left.
#[test]
fn restore_rewinds_a_diverged_run() {
    let cfg = scenario(3, 11);
    let mut run = FleetSim::new(cfg).expect("valid fleet").start(1);
    run.step_epoch(1);
    let cp = run.checkpoint();
    while !run.done() {
        run.step_epoch(1);
    }
    let first = format!("{run:#?}");
    run.restore(&cp);
    while !run.done() {
        run.step_epoch(1);
    }
    assert_eq!(format!("{run:#?}"), first);
}

fn failover_cfg(seed: u64, kill_tick: u64, epochs: u32) -> FleetConfig {
    FleetConfig::quick(seed)
        .with_epochs(epochs)
        .with_faults(FleetFaultPlan::new(chip_killer(kill_tick), 3))
        .with_failover(FailoverConfig::default())
}

/// The extended conservation law — every generated request is exactly
/// one of routed, shed, retry-shed, deferred-unserved or
/// retry-unserved — must hold at *every* epoch barrier of a failover
/// run, not just at the end.
#[test]
fn the_exactly_once_law_holds_at_every_barrier() {
    let mut run = FleetSim::new(failover_cfg(42, 25, 6))
        .expect("valid fleet")
        .start(2);
    while !run.done() {
        run.step_epoch(2);
        let partial = run.clone().finish();
        assert!(
            partial.conservation_holds(),
            "books unbalanced after epoch {}: {:?}",
            partial.epochs,
            partial.routing
        );
    }
    let report = run.finish();
    assert!(
        report.routing.hard_failed_chips >= 1,
        "{:?}",
        report.routing
    );
    assert!(report.routing.retried > 0, "{:?}", report.routing);
}

/// Failover decisions happen at the serial barrier, so the whole
/// kill → retry → resurrect → probation arc must be worker-count
/// invariant.
#[test]
fn failover_is_byte_identical_across_worker_counts() {
    let run = |workers: usize| -> FleetReport {
        FleetSim::new(failover_cfg(42, 25, 6))
            .expect("valid fleet")
            .run(workers)
    };
    let serial = format!("{:#?}", run(1));
    for workers in [2usize, 8] {
        assert_eq!(serial, format!("{:#?}", run(workers)), "k = {workers}");
    }
}

/// A chip killed after the first periodic checkpoint comes back: the
/// outage is detected, the machine resurrects from its checkpoint, and
/// the cumulative account survives the round trip.
#[test]
fn a_dead_chip_resurrects_from_its_checkpoint() {
    let report = FleetSim::new(failover_cfg(42, 25, 6))
        .expect("valid fleet")
        .run(2);
    assert!(
        report.routing.hard_failed_chips >= 1,
        "{:?}",
        report.routing
    );
    assert!(
        report.routing.resurrected_chips >= 1,
        "{:?}",
        report.routing
    );
    assert!(report.conservation_holds(), "{:?}", report.routing);
}

/// With no failover armed, the same outage sheds the bounced batches
/// instead of retrying them — and the books still balance.
#[test]
fn without_failover_the_outage_is_shed_not_retried() {
    let mut cfg = failover_cfg(42, 25, 6);
    cfg.failover = None;
    let report = FleetSim::new(cfg).expect("valid fleet").run(2);
    assert!(
        report.routing.hard_failed_chips >= 1,
        "{:?}",
        report.routing
    );
    assert_eq!(report.routing.retried, 0);
    assert_eq!(report.routing.resurrected_chips, 0);
    assert!(report.routing.retry_shed > 0, "{:?}", report.routing);
    assert!(report.conservation_holds(), "{:?}", report.routing);
}

/// A retry budget of zero is a legal ladder: the first bounce is already
/// past the ceiling, so everything the dead chip rejects is permanently
/// shed — bounded retry means *bounded*.
#[test]
fn a_zero_retry_budget_sheds_on_the_first_bounce() {
    let mut cfg = failover_cfg(42, 25, 6);
    cfg.failover = Some(FailoverConfig {
        retry_budget: 0,
        ..FailoverConfig::default()
    });
    let report = FleetSim::new(cfg).expect("valid fleet").run(2);
    assert!(
        report.routing.hard_failed_chips >= 1,
        "{:?}",
        report.routing
    );
    assert_eq!(report.routing.retried, 0, "{:?}", report.routing);
    assert!(report.routing.retry_shed > 0, "{:?}", report.routing);
    assert!(report.conservation_holds(), "{:?}", report.routing);
}

/// The bisection acceptance test: a three-spec campaign whose only
/// predicate-relevant member is the hard-fail spec minimizes to exactly
/// that spec — and the checkpoint replays cost fewer epochs than fresh
/// runs would have.
#[test]
fn bisect_recovers_the_known_minimal_fault() {
    let benign = |start: u64, kind: FaultKind| FaultSpec {
        target: FaultTarget::Seeded,
        kind,
        start,
        period: 0,
        repeats: 1,
        duration: 2,
    };
    let plan = FaultPlan::new("storm-with-a-killer")
        .with(benign(3, FaultKind::CpmDropout))
        .with(benign(
            10,
            FaultKind::LoadBurst {
                magnitude_mv: 45,
                sharpness_pct: 85,
            },
        ))
        .with(FaultSpec {
            target: FaultTarget::Seeded,
            kind: FaultKind::ChipHardFail,
            start: 45,
            period: 0,
            repeats: 1,
            duration: 1,
        });
    let cfg = FleetConfig::quick(42)
        .with_epochs(4)
        .with_faults(FleetFaultPlan::new(plan, 3))
        .with_failover(FailoverConfig::default());

    let outcome = bisect(
        &cfg,
        |report| report.routing.hard_failed_chips > 0,
        &BisectConfig {
            workers: 2,
            checkpoint_stride: 1,
        },
    )
    .expect("bisectable campaign");

    assert_eq!(outcome.minimal_indices, vec![2], "{outcome:?}");
    assert_eq!(outcome.minimal[0].kind, FaultKind::ChipHardFail);
    assert!(
        outcome.epochs_replayed < outcome.epochs_full,
        "checkpoint replay saved nothing: {outcome:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `restore(checkpoint(s))` is a byte-identical fixed point for an
    /// arbitrary mid-run state — whatever scenario the fleet is in
    /// (queues loaded, fault hooks mid-campaign, adapter probing, a
    /// regulator integral wound up) and wherever the run was paused.
    #[test]
    fn restore_of_checkpoint_is_a_fixed_point(
        seed in 1u64..500,
        which in 0usize..5,
        pause in 1u32..4,
    ) {
        // Scenario 4 adds the failover arc: a killed chip mid-ladder,
        // probation pending, retries parked.
        let cfg = if which == 4 {
            failover_cfg(seed, 25, 6)
        } else {
            scenario(which, seed)
        };
        let mut run = FleetSim::new(cfg).expect("valid fleet").start(2);
        for _ in 0..pause.min(run.config().epochs - 1) {
            run.step_epoch(2);
        }
        let before = format!("{run:#?}");
        let cp = run.checkpoint();
        run.restore(&cp);
        prop_assert_eq!(format!("{run:#?}"), before, "restore moved the state");

        // And the sealed form still verifies and carries the same bytes.
        let sealed = Snapshot::seal(cp);
        let thawed = sealed.state().expect("sealed in-process").thaw();
        prop_assert_eq!(format!("{thawed:#?}"), before);
    }

    /// Flipping a single checksum bit must poison the snapshot.
    #[test]
    fn a_corrupted_seal_is_refused(seed in 1u64..200, bit in 0u32..64) {
        let run = FleetSim::new(scenario(0, seed).with_chips(2).with_epochs(1))
            .expect("valid fleet")
            .start(1);
        let mut sealed = Snapshot::seal(run.checkpoint());
        sealed.checksum ^= 1u64 << bit;
        prop_assert!(sealed.verify().is_err());
        prop_assert!(sealed.state().is_err());
    }
}
