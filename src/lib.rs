//! `power-atm` — fine-tuning the Active Timing Margin control loop.
//!
//! A reproduction of the HPCA 2019 paper *"Fine-Tuning the Active Timing
//! Margin (ATM) Control Loop for Maximizing Multi-Core Efficiency on an
//! IBM POWER Server"*: the per-core CPM fine-tuning technique, the
//! idle → uBench → realistic characterization methodology, and the
//! predictor-driven management scheme — all running against a calibrated
//! simulation of the paper's two-socket POWER7+ platform.
//!
//! This facade re-exports every crate of the stack so applications can
//! depend on one name:
//!
//! | module | contents |
//! |---|---|
//! | [`units`] | typed `Picos`/`MegaHz`/`Volts`/`Watts`/`CoreId` quantities |
//! | [`silicon`] | process variation, path delay, inverter chains |
//! | [`pdn`] | IR drop, di/dt droops, power and thermal models |
//! | [`cpm`] | programmable Critical Path Monitors |
//! | [`dpll`] | the per-core ATM control loop and clocking |
//! | [`workloads`] | calibrated SPEC/PARSEC/ML/stressmark profiles |
//! | [`telemetry`] | zero-overhead-by-default recording of control-loop decisions |
//! | [`chip`] | the two-socket simulator |
//! | [`core`] | fine-tuning, characterization, prediction, management |
//! | [`adapt`] | online recharacterization: live predictor refinement, micro-probes, confidence-gated re-tightening |
//! | [`capping`] | integral power regulator above ATM, power budgets, and the integer-picojoule energy account |
//! | [`serve`] | deterministic request serving with SLO accounting |
//! | [`faults`] | seeded fault-injection campaigns and recovery reports |
//! | [`fleet`] | fleet-scale sharded simulation behind a deterministic epoch-barrier router |
//! | [`recovery`] | sealed checkpoint/restore, failover verification, and fault-campaign bisection |
//! | [`experiments`] | regeneration of every paper table and figure |
//!
//! The [`prelude`] re-exports the handful of types nearly every program
//! needs, so `use power_atm::prelude::*;` is enough to get going.
//!
//! # The whole pipeline in one example
//!
//! ```no_run
//! use power_atm::prelude::*;
//!
//! // 1. A server with freshly minted silicon.
//! let sys = System::new(ChipConfig::power7_plus(42));
//!
//! // 2. Vendor test-time deployment: stress-test every core's limit.
//! let mut mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::standard());
//!
//! // 3. Field management: critical app to the fastest core, background
//! //    throttled until a 10% speedup over static margin is guaranteed,
//! //    with every control-loop decision recorded.
//! let mut rec = RingRecorder::with_capacity(4096);
//! let outcome = mgr.evaluate_pair(
//!     by_name("squeezenet").unwrap(),
//!     by_name("x264").unwrap(),
//!     Strategy::ManagedBalanced(QosTarget::improvement_pct(10.0)),
//!     &mut rec,
//! );
//! assert!(outcome.ok && outcome.speedup >= 1.10);
//!
//! // 4. The snapshot renders and parses losslessly for offline analysis.
//! let snap = rec.snapshot();
//! assert!(snap.counter("chip.ticks").is_some());
//! ```
//!
//! A quicker taste:
//!
//! ```
//! use power_atm::units::MegaHz;
//!
//! assert_eq!(MegaHz::new(4200.0).to_string(), "4200 MHz");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use atm_units as units;

pub use atm_adapt as adapt;
pub use atm_capping as capping;
pub use atm_chip as chip;
pub use atm_core as core;
pub use atm_cpm as cpm;
pub use atm_dpll as dpll;
pub use atm_experiments as experiments;
pub use atm_faults as faults;
pub use atm_fleet as fleet;
pub use atm_pdn as pdn;
pub use atm_recovery as recovery;
pub use atm_serve as serve;
pub use atm_silicon as silicon;
pub use atm_telemetry as telemetry;
pub use atm_workloads as workloads;

pub mod prelude {
    //! The types nearly every `power-atm` program touches, in one import.
    //!
    //! # Examples
    //!
    //! ```
    //! use power_atm::prelude::*;
    //!
    //! let sys = System::new(ChipConfig::default());
    //! let workload = by_name("squeezenet").unwrap();
    //! assert_eq!(workload.name(), "squeezenet");
    //! let _ = (sys, NullRecorder);
    //! ```

    pub use atm_adapt::{AdaptConfig, AdaptReport, NullAdapter, OnlineAdapter};
    pub use atm_capping::{
        CapConfig, CapReport, EnergyModel, EnergyReport, FleetBudget, PowerBudget, PowerRegulator,
        RegulatorConfig,
    };
    pub use atm_chip::{ChipConfig, MarginMode, System};
    pub use atm_core::charact::CharactConfig;
    pub use atm_core::manager::Strategy;
    pub use atm_core::{AtmManager, Governor, LimitTable, MarginSupervisor, QosTarget};
    pub use atm_faults::{FaultCampaign, FaultPlan};
    pub use atm_fleet::{FleetConfig, FleetConfigBuilder, FleetReport, FleetRun, FleetSim};
    pub use atm_recovery::{Snapshot, SnapshotError};
    pub use atm_serve::{ServeConfig, ServeSim, StreamSpec};
    pub use atm_silicon::DriftModel;
    pub use atm_telemetry::{NullRecorder, Recorder, RingRecorder, TelemetrySnapshot};
    pub use atm_units::{AtmError, CoreId, MegaHz, Nanos, ProcId, Watts};
    pub use atm_workloads::{by_name, Workload};
}
