//! Run the standard fault-injection campaigns against supervised servers.
//!
//! ```text
//! cargo run --release --example fault_campaign [seed] [trials] [workers]
//! ```
//!
//! Each plan — droop-storm, sensor-chaos, actuator-flap — is replayed
//! against `trials` independently minted, fine-tuned, supervisor-watched
//! servers. The report is a pure function of `(plan, seed)`: rerun with
//! the same arguments (any worker count) and every number matches.

use power_atm::faults::{standard_plans, FaultCampaign};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let trials: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("fault campaigns: seed {seed}, {trials} trials, {workers} workers\n");
    for plan in standard_plans() {
        let report = FaultCampaign::new(plan, seed).trials(trials).run(workers);
        println!("{report}\n");
        assert!(
            report.detected <= report.injected,
            "detection cannot exceed injection"
        );
    }
}
