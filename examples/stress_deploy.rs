//! The vendor's test-time deployment procedure (paper Sec. VII-A):
//! iterate over each core under worst-case stressmarks — a synchronized
//! voltage virus, a power virus and an ISA suite — to find the limit CPM
//! configuration, optionally rolled back for extra safety.
//!
//! ```text
//! cargo run --release --example stress_deploy [rollback]
//! ```

use power_atm::core::stress::stress_test_deploy;
use power_atm::prelude::*;
use power_atm::telemetry::NullRecorder;

fn main() {
    let rollback: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let mut sys = System::new(ChipConfig::power7_plus(42));
    println!("running per-core stress-test (rollback {rollback})...\n");
    let result = stress_test_deploy(&mut sys, rollback, &CharactConfig::quick());

    println!("core   limit  deployed  idle ATM freq");
    for core in CoreId::all() {
        println!(
            "{core}   {:>5}  {:>8}  {}",
            result.limits[core.flat_index()],
            result.deployed(core),
            result.idle_frequencies[core.flat_index()]
        );
    }
    println!(
        "\ninter-core speed differential: {} (paper: >200 MHz)",
        result.speed_differential()
    );

    // Sanity: the deployed configuration honors the management contract
    // (every core in ATM at its limit under worst realistic co-location).
    sys.assign_all(
        &power_atm::workloads::by_name("x264")
            .expect("catalog")
            .clone(),
    );
    sys.set_mode_all(power_atm::chip::MarginMode::Atm);
    let report = sys.run(power_atm::units::Nanos::new(100_000.0), &mut NullRecorder);
    println!(
        "all-core worst-co-location validation at deployed config: {}",
        if report.is_ok() { "PASS" } else { "FAIL" }
    );
}
