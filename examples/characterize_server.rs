//! Full characterization of a server, following the paper's Fig. 6
//! methodology: system idle → micro-benchmarks → realistic workloads.
//! Prints the equivalent of Table I plus the per-phase detail.
//!
//! ```text
//! cargo run --release --example characterize_server [seed]
//! ```

use power_atm::prelude::*;
use power_atm::telemetry::NullRecorder;
use power_atm::workloads::realistic_set;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("characterizing server minted from seed {seed}...\n");

    let mut sys = System::new(ChipConfig::power7_plus(seed));
    let apps = realistic_set();
    let cfg = CharactConfig::quick();
    let (table, idle, ubench, realistic) =
        LimitTable::characterize_detailed(&mut sys, &apps, &cfg, &mut NullRecorder);

    println!("== Idle characterization (Sec. IV) ==");
    for r in &idle {
        println!(
            "  {}: limit {} (samples {:?}), {} at limit",
            r.core,
            r.idle_limit(),
            r.distribution.samples(),
            r.limit_frequency
        );
    }

    println!("\n== uBench characterization (Sec. V) ==");
    let fragile: Vec<_> = ubench.iter().filter(|r| r.rollback() > 0).collect();
    println!("  {} of 16 cores needed rollback:", fragile.len());
    for r in &fragile {
        println!("  {}: rolled back {} step(s)", r.core, r.rollback());
    }

    println!("\n== Realistic workloads (Sec. VI) ==");
    let mut stress: Vec<(String, f64)> = apps
        .iter()
        .map(|a| (a.name().to_owned(), realistic.app_stress(a.name())))
        .collect();
    stress.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("  application stress ranking (mean CPM rollback):");
    for (app, s) in stress.iter().take(5) {
        println!("    {app:<14} {s:.2}");
    }
    println!("    ...");
    for (app, s) in stress.iter().rev().take(3).rev() {
        println!("    {app:<14} {s:.2}");
    }

    println!("\n== Table I ==");
    println!("{table}");
}
