//! Serving a latency-critical inference service on a fine-tuned ATM
//! server: deploy via the test-time stress-test, posture SqueezeNet on
//! the fastest core with throttled background co-runners, then drive the
//! server with an open-loop traffic trace — Poisson inference arrivals
//! against a bursty encode/batch background — while the droop-aware
//! degradation policy watches the chip. A timing failure is injected
//! mid-run to show the rollback → re-placement → recovery path.
//!
//! ```text
//! cargo run --release --example managed_inference
//! ```

use power_atm::chip::FailureKind;
use power_atm::prelude::*;
use power_atm::serve::ArrivalPattern;
use power_atm::telemetry::NullRecorder;

fn main() {
    println!("deploying fine-tuned ATM via the test-time stress-test...");
    let sys = System::new(ChipConfig::power7_plus(42));
    let mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
    println!(
        "deployed; inter-core speed differential: {}\n",
        mgr.deployed().speed_differential()
    );

    let squeezenet = by_name("squeezenet").expect("catalog");
    let x264 = by_name("x264").expect("catalog");
    let lu = by_name("lu_cb").expect("catalog");

    // One critical inference stream (250 ms p99 SLO), two background
    // streams: bursty video encoding and steady batch algebra.
    let streams = vec![
        StreamSpec::critical(
            squeezenet,
            ArrivalPattern::Poisson {
                mean_gap: 150_000_000,
            },
            250_000_000,
        ),
        StreamSpec::background(
            x264,
            ArrivalPattern::Bursty {
                mean_gap: 20_000_000,
                burst_gap: 5_000_000,
                phase: 100_000_000,
            },
        ),
        StreamSpec::background(
            lu,
            ArrivalPattern::Poisson {
                mean_gap: 15_000_000,
            },
        ),
    ];

    let cfg = ServeConfig::standard(42);
    let mut sim = ServeSim::new(mgr, cfg.clone(), streams).expect("valid serving setup");
    // Mid-run field failure on a serving core: watch the recovery.
    sim.inject_failure(8, CoreId::new(0, 0), FailureKind::SystemCrash);
    println!(
        "serving {} epochs x {} ms of open-loop traffic...",
        cfg.epochs,
        cfg.epoch_ns / 1_000_000
    );
    let report = sim.run(4, &mut NullRecorder);

    println!(
        "\n{:.1} requests/s overall; {} completed, {} shed, {} deferral(s)",
        report.requests_per_sec(),
        report.completed,
        report.shed,
        report.deferred
    );
    println!("critical stream ended on core {}\n", report.critical_core);

    println!(
        "{:<14} {:>10} {:>9} {:>7} {:>9} {:>9} {:>9} {:>14}",
        "stream", "class", "served", "shed", "p50", "p95", "p99", "SLO"
    );
    for s in &report.streams {
        println!(
            "{:<14} {:>10} {:>9} {:>7} {:>7.1}ms {:>7.1}ms {:>7.1}ms {:>14}",
            s.name,
            format!("{:?}", s.class),
            s.completed,
            s.shed,
            s.p50_ns as f64 / 1e6,
            s.p95_ns as f64 / 1e6,
            s.p99_ns as f64 / 1e6,
            if s.slo_ns == 0 {
                "-".to_string()
            } else if s.slo_met() {
                format!("met ({} ms)", s.slo_ns / 1_000_000)
            } else {
                format!("MISSED ({} ms)", s.slo_ns / 1_000_000)
            }
        );
    }

    if report.transitions.is_empty() {
        println!("\nno degradation events");
    } else {
        println!("\ndegradation timeline:");
        for t in &report.transitions {
            println!(
                "  epoch {:>2}: {} -> critical on {} at {} MHz",
                t.epoch, t.action, t.critical_core, t.critical_freq_mhz
            );
        }
    }

    let crit = report.critical();
    println!("\ncritical per-epoch p99 (ms):");
    let series: Vec<String> = crit
        .epoch_p99_ns
        .iter()
        .map(|p| {
            if *p == 0 {
                "-".to_string()
            } else {
                format!("{:.0}", *p as f64 / 1e6)
            }
        })
        .collect();
    println!("  [{}]", series.join(", "));
}
