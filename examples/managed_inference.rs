//! Managing a latency-critical inference service on a fine-tuned ATM
//! server (the paper's Sec. VII scenario): deploy via the test-time
//! stress-test, place SqueezeNet on the fastest core, and throttle the
//! background co-runners just enough to guarantee a 10% speedup.
//!
//! ```text
//! cargo run --release --example managed_inference
//! ```

use power_atm::chip::{ChipConfig, System};
use power_atm::core::charact::CharactConfig;
use power_atm::core::manager::Strategy;
use power_atm::core::{AtmManager, Governor, QosTarget};
use power_atm::workloads::by_name;

fn main() {
    println!("deploying fine-tuned ATM via the test-time stress-test...");
    let sys = System::new(ChipConfig::power7_plus(42));
    let mut mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
    println!(
        "deployed; inter-core speed differential: {}\n",
        mgr.deployed().speed_differential()
    );

    let squeezenet = by_name("squeezenet").expect("catalog");
    let qos = QosTarget::improvement_pct(10.0);

    for background in ["streamcluster", "x264", "lu_cb"] {
        let bg = by_name(background).expect("catalog");
        println!("co-runner: {background}");
        for strategy in [
            Strategy::StaticMargin,
            Strategy::DefaultAtm,
            Strategy::FineTunedUnmanaged,
            Strategy::ManagedMax,
            Strategy::ManagedBalanced(qos),
        ] {
            let o = mgr.evaluate_pair(squeezenet, bg, strategy);
            let latency_ms = 80.0 / o.speedup; // paper's 80 ms baseline
            println!(
                "  {:<34} core {} at {}, {:>6.1}% speedup, {latency_ms:.1} ms, {} chip power{}",
                o.strategy.to_string(),
                o.critical_core,
                o.critical_freq,
                (o.speedup - 1.0) * 100.0,
                o.chip_power,
                match o.background_setting {
                    Some(s) => format!(", bg {s}"),
                    None => String::new(),
                }
            );
        }
        println!();
    }
}
