//! Margin accounting: watch the clock-period budget shift as a core is
//! fine-tuned — the paper's story told as an accounting identity.
//!
//! Every cycle splits into real path delay, the coverage gap the CPMs
//! cannot see, and untapped margin. Fine-tuning converts the untapped
//! term into frequency until the safety limit is reached.
//!
//! ```text
//! cargo run --release --example margin_accounting
//! ```

use power_atm::core::analysis::MarginBreakdown;
use power_atm::prelude::*;
use power_atm::units::{Celsius, Volts};

fn main() {
    let mut sys = System::new(ChipConfig::power7_plus(42));
    let core = CoreId::new(0, 1);
    let v = Volts::new(1.235);
    let t = Celsius::new(45.0);

    println!("core {core}, idle conditions ({v}, {t})\n");
    println!("steps  frequency   real path   cov. gap   untapped   untapped %");
    let max = sys.core(core).cpms().max_reduction().min(10);
    for r in 0..=max {
        sys.set_reduction(core, r).expect("within preset");
        let b = MarginBreakdown::compute(&sys, core, v, t, 0.0);
        b.assert_identity();
        println!(
            "{r:>5}  {:>9}  {:>10}  {:>9}  {:>9}  {:>9.1}%",
            format!("{}", b.frequency),
            format!("{}", b.real_path),
            format!("{}", b.coverage_gap),
            format!("{}", b.unseen_margin),
            b.untapped_fraction() * 100.0
        );
        if b.unseen_margin.get() < 2.0 {
            println!("\n(untapped margin nearly exhausted — the safe limit is close)");
            break;
        }
    }

    sys.set_reduction(core, 0).expect("always valid");
    println!("\nfull breakdown at the preset configuration:");
    println!("{}", MarginBreakdown::compute(&sys, core, v, t, 0.0));
    println!("under a path-heavy workload (stress = 0.8) the gap eats the margin:");
    println!("{}", MarginBreakdown::compute(&sys, core, v, t, 0.8));
}
