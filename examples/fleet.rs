//! Fleet quickstart and determinism smoke: simulate a small sharded
//! fleet twice — serial and on four workers — and byte-compare the
//! reports.
//!
//! ```text
//! cargo run --release --example fleet [seed] [chips] [epochs]
//! ```
//!
//! The run exercises the whole fleet stack: per-chip silicon lots and
//! fine-tuned deploys, SplitMix64-split traffic lanes, epoch-barrier
//! placement (fastest healthy silicon serves the critical lanes), and
//! the exactly-once routing account. It exits non-zero if the two
//! reports differ in any byte, if a request leaks from the books, or if
//! a drained chip ever saw a late critical request — so `just fleet` is
//! a real determinism gate, not a demo.

use power_atm::fleet::{FleetConfig, FleetSim};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map_or(42, |a| a.parse().expect("seed"));
    let chips: u32 = args.next().map_or(8, |a| a.parse().expect("chips"));
    let epochs: u32 = args.next().map_or(4, |a| a.parse().expect("epochs"));

    let cfg = FleetConfig::quick(seed)
        .with_chips(chips)
        .with_epochs(epochs);
    let serial = FleetSim::new(cfg.clone()).expect("valid fleet").run(1);
    let sharded = FleetSim::new(cfg).expect("valid fleet").run(4);

    assert_eq!(
        format!("{serial:#?}"),
        format!("{sharded:#?}"),
        "worker count leaked into the fleet report (seed {seed})"
    );
    assert!(serial.conservation_holds(), "routing books out of balance");
    assert!(serial.drained_respected(), "drained chip served a critical");

    println!("{serial}");
    println!("serial and 4-worker runs byte-identical ✓");
}
