//! Quickstart: mint a two-socket POWER7+-style server, switch a core into
//! Active Timing Margin mode, fine-tune its CPM inserted delay, and watch
//! the control loop convert the exposed margin into frequency.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use power_atm::core::FineTuner;
use power_atm::prelude::*;
use power_atm::telemetry::NullRecorder;

fn main() {
    // A deterministic server: same seed, same silicon.
    let mut sys = System::new(ChipConfig::power7_plus(42));
    let core = CoreId::new(0, 0);

    // 1. Static margin baseline: the 4.2 GHz p-state.
    let report = sys.run(Nanos::new(10_000.0), &mut NullRecorder);
    println!("static margin      : {}", report.core(core).mean_freq);

    // 2. Default ATM: the preset CPM configuration targets a uniform
    //    ~4.6 GHz on every core.
    sys.set_mode(core, MarginMode::Atm);
    let report = sys.run(Nanos::new(10_000.0), &mut NullRecorder);
    println!("default ATM        : {}", report.core(core).mean_freq);

    // 3. Fine-tune: reduce the CPM inserted delay step by step. The loop
    //    perceives more margin and raises frequency automatically.
    let sweep = FineTuner::new(&mut sys).frequency_sweep(core, 6);
    for (steps, freq) in &sweep {
        println!("  {steps} step(s) removed -> {freq}");
    }
    let (best_steps, best) = sweep.last().expect("non-empty sweep");
    sys.set_reduction(core, *best_steps).expect("swept value");
    println!("fine-tuned ATM     : {best} ({best_steps} steps)");

    // 4. Run a real workload on the fine-tuned core and measure.
    sys.assign(core, by_name("gcc").expect("catalog").clone());
    let report = sys.run(Nanos::new(50_000.0), &mut NullRecorder);
    let measured = report.core(core).mean_freq;
    println!(
        "gcc on tuned core  : {measured} ({}), correct: {}",
        power_atm::units::MegaHz::new(4200.0),
        report.is_ok()
    );
    let gain = measured.gain_over(power_atm::units::MegaHz::new(4200.0));
    println!("gain over static   : {:+.1}%", gain * 100.0);

    // Full telemetry for the last run.
    println!("\n{report}");
}
