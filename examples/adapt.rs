//! Online-adaptation smoke: serve a drifting silicon lot with the
//! recharacterization loop closed, and gate on the loop's three promises.
//!
//! ```text
//! cargo run --release --example adapt [seed] [epochs]
//! ```
//!
//! The run deploys a conservatively governed server (one CPM step below
//! the validated ceiling), ages the lot epoch by epoch
//! ([`DriftModel::standard`]), and lets [`OnlineAdapter`] refine the
//! Eq. 1 predictor from live harvests and micro-probe bursts. It exits
//! non-zero unless:
//!
//! * the predictor **learns** — per-window RMS error shrinks
//!   monotonically-on-average ([`AdaptReport::error_shrinks`]);
//! * serving stays **safe** — the critical stream meets its SLO, with
//!   every re-tighten episode's epoch p99 inside the budget;
//! * the run is **deterministic** — a serial and a 4-worker run agree
//!   byte for byte, adaptation account included.
//!
//! So `just adapt` is a real acceptance gate, not a demo.
//!
//! [`AdaptReport::error_shrinks`]: power_atm::adapt::AdaptReport::error_shrinks

use power_atm::adapt::{AdaptConfig, OnlineAdapter};
use power_atm::chip::{ChipConfig, System};
use power_atm::core::charact::CharactConfig;
use power_atm::core::{AtmManager, Governor};
use power_atm::serve::{ArrivalPattern, ServeConfig, ServeReport, ServeSim, StreamSpec};
use power_atm::silicon::DriftModel;
use power_atm::telemetry::NullRecorder;
use power_atm::units::Nanos;
use power_atm::workloads::by_name;

const SLO_NS: u64 = 250_000_000;

fn run(seed: u64, epochs: u32, workers: usize) -> ServeReport {
    let streams = vec![
        StreamSpec::critical(
            by_name("squeezenet").expect("catalog"),
            ArrivalPattern::Poisson {
                mean_gap: 150_000_000,
            },
            SLO_NS,
        ),
        StreamSpec::background(
            by_name("x264").expect("catalog"),
            ArrivalPattern::Poisson {
                mean_gap: 40_000_000,
            },
        ),
    ];
    let sys = System::new(ChipConfig::power7_plus(seed));
    let mgr = AtmManager::deploy(sys, Governor::Conservative, &CharactConfig::quick());
    let cfg = ServeConfig::builder(seed)
        .epochs(epochs)
        .epoch_ns(200_000_000)
        .chip_trial(Nanos::new(1_000.0))
        .build()
        .expect("valid config");
    let mut sim = ServeSim::new(mgr, cfg, streams).expect("valid serving setup");
    sim.set_drift(DriftModel::standard(seed));
    sim.set_adapter(Box::new(OnlineAdapter::new(AdaptConfig::standard())));
    sim.run(workers, &mut NullRecorder)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map_or(42, |a| a.parse().expect("seed"));
    let epochs: u32 = args.next().map_or(24, |a| a.parse().expect("epochs"));

    let report = run(seed, epochs, 1);
    let sharded = run(seed, epochs, 4);
    assert_eq!(
        format!("{report:#?}"),
        format!("{sharded:#?}"),
        "worker count leaked into the adapting serve report (seed {seed})"
    );

    let adapt = report.adapt.as_ref().expect("adaptation was on");
    assert!(adapt.observations > 0, "the estimator never saw a harvest");
    assert!(
        adapt.windows.len() >= 2,
        "too few recharacterization windows to judge convergence"
    );
    assert!(
        adapt.error_shrinks(),
        "predictor error did not shrink: {:?}",
        adapt.windows
    );

    let critical = report.critical();
    assert!(
        critical.slo_met(),
        "critical stream missed its SLO ({} violations)",
        critical.slo_violations
    );
    for t in &report.transitions {
        if t.action == "adapter re-tighten" {
            let p99 = critical.epoch_p99_ns[t.epoch as usize];
            assert!(
                p99 <= SLO_NS,
                "re-tighten at epoch {} broke the critical p99 ({p99} ns)",
                t.epoch
            );
        }
    }

    println!(
        "seed {seed}: {} epochs, {} observations, {} probes ({} deferred), \
         {} re-tightens (+{} steps)",
        epochs,
        adapt.observations,
        adapt.probes_run,
        adapt.probes_deferred,
        adapt.retightens,
        adapt.retighten_steps
    );
    for w in &adapt.windows {
        println!(
            "  window {:>2}: {:>4} obs, RMS {:>7} milli-MHz",
            w.window, w.observations, w.rms_milli_mhz
        );
    }
    println!(
        "critical p99 {} ns (SLO {} ns), {} completions",
        critical.p99_ns, SLO_NS, report.completed
    );
    println!("predictor error shrinks, SLOs hold, serial ≡ 4-worker ✓");
}
