//! Regenerates the golden byte-identity references for the determinism
//! contracts (see `atm_experiments::perfref`).
//!
//! ```text
//! cargo run --release --example perf_reference > tests/data/reference_reports.txt
//! cargo run --release --example perf_reference fleet > tests/data/fleet_reference.txt
//! ```
//!
//! The checked-in hot-path file was captured from the tree *before* the
//! tick-loop performance overhaul; the fleet file was captured when the
//! sharded fleet landed. `tests/perf_reference.rs` compares every build
//! against both byte-for-byte. Regenerate only when a scenario or report
//! format intentionally changes — never to paper over a determinism diff.

fn main() {
    let bundle = std::env::args().nth(1);
    match bundle.as_deref() {
        Some("fleet") => print!(
            "{}",
            power_atm::experiments::perfref::fleet_full_reference()
        ),
        None => print!("{}", power_atm::experiments::perfref::full_reference()),
        Some(other) => {
            eprintln!("unknown bundle {other:?}: expected no argument or \"fleet\"");
            std::process::exit(2);
        }
    }
}
