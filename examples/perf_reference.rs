//! Regenerates the golden byte-identity reference for the hot-path
//! determinism contract (see `atm_experiments::perfref`).
//!
//! ```text
//! cargo run --release --example perf_reference > tests/data/reference_reports.txt
//! ```
//!
//! The checked-in file was captured from the tree *before* the tick-loop
//! performance overhaul; `tests/perf_reference.rs` compares every build
//! against it byte-for-byte. Regenerate only when a scenario or report
//! format intentionally changes — never to paper over a hot-path diff.

fn main() {
    print!("{}", power_atm::experiments::perfref::full_reference());
}
