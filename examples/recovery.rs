//! Recovery smoke: hard-fail a chip mid-run and prove the fleet survives.
//!
//! ```text
//! cargo run --release --example recovery [kill_tick] [epochs]
//! ```
//!
//! Under two seeds, a `chip_killer` campaign takes a chip down mid-run
//! with the failover ladder armed. The run is a gate, not a demo — it
//! exits non-zero unless, for both seeds:
//!
//! - at least one chip hard-failed and its bounced batches were retried
//!   (the ladder engaged);
//! - the exactly-once account still balances: every generated request is
//!   exactly one of routed, shed, retry-shed or unserved;
//! - the fleet re-converged after the failover — critical traffic was
//!   still being routed and served in the final epoch, and the critical
//!   p99 stayed inside the SLO;
//! - the serial run and the 4-worker run agree byte for byte, failover
//!   arc included.

use power_atm::faults::{chip_killer, FleetFaultPlan};
use power_atm::fleet::{FailoverConfig, FleetConfig, FleetReport, FleetSim};

fn failover_fleet(seed: u64, kill_tick: u64, epochs: u32) -> FleetConfig {
    FleetConfig::quick(seed)
        .with_epochs(epochs)
        .with_faults(FleetFaultPlan::new(chip_killer(kill_tick), 3))
        .with_failover(FailoverConfig::default())
}

fn check(seed: u64, kill_tick: u64, epochs: u32) -> Result<(), String> {
    let cfg = failover_fleet(seed, kill_tick, epochs);
    let serial: FleetReport = FleetSim::new(cfg.clone())
        .map_err(|e| format!("seed {seed}: bad config: {e}"))?
        .run(1);
    let sharded = FleetSim::new(cfg)
        .map_err(|e| format!("seed {seed}: bad config: {e}"))?
        .run(4);

    let r = &serial.routing;
    if r.hard_failed_chips == 0 {
        return Err(format!("seed {seed}: no chip hard-failed: {r:?}"));
    }
    if r.retried == 0 {
        return Err(format!("seed {seed}: failover never retried: {r:?}"));
    }
    if !serial.conservation_holds() {
        return Err(format!("seed {seed}: the books leak: {r:?}"));
    }
    let last_epoch = i64::from(serial.epochs) - 1;
    if !serial
        .rows
        .iter()
        .any(|row| row.last_critical_epoch == last_epoch)
    {
        return Err(format!(
            "seed {seed}: no chip carried critical traffic in the final epoch"
        ));
    }
    let slo_ns = 250_000_000; // ChipServeConfig::standard critical SLO
    if serial.critical.p99_ns > slo_ns {
        return Err(format!(
            "seed {seed}: critical p99 {} ns blew the {slo_ns} ns SLO after failover",
            serial.critical.p99_ns
        ));
    }
    if format!("{serial:#?}") != format!("{sharded:#?}") {
        return Err(format!("seed {seed}: serial and 4-worker runs diverged"));
    }

    println!(
        "seed {seed}: {} hard-failed / {} resurrected, {} retried ({} retry-shed), \
         critical p99 {} ns, serial == 4-worker — ok",
        r.hard_failed_chips, r.resurrected_chips, r.retried, r.retry_shed, serial.critical.p99_ns
    );
    Ok(())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let kill_tick: u64 = args.next().map_or(25, |a| a.parse().expect("kill_tick"));
    let epochs: u32 = args.next().map_or(6, |a| a.parse().expect("epochs"));

    let mut failed = false;
    for seed in [42u64, 7] {
        if let Err(why) = check(seed, kill_tick, epochs) {
            eprintln!("FAIL {why}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("recovery smoke passed: failover, exactly-once accounting, determinism");
}
