//! Per-tick trace of the ATM control loop riding out di/dt droops: an
//! ASCII strip chart of a fine-tuned core's frequency while x264 runs.
//!
//! Each printed row is one 100 ns slice; the bar shows where the clock
//! sits between the minimum and maximum of the capture. Dips are the
//! loop's droop responses; the slow climbs afterwards are the up-slew.
//!
//! ```text
//! cargo run --release --example trace_droops
//! ```

use power_atm::prelude::*;

fn main() {
    let mut sys = System::new(ChipConfig::power7_plus(42));
    let core = CoreId::new(0, 0);
    sys.set_mode(core, MarginMode::Atm);
    sys.set_reduction(core, 3).expect("within preset");
    sys.assign(core, by_name("x264").expect("catalog").clone());

    let (report, trace) = sys.run_traced(Nanos::new(10_000.0), core, 2);
    let (lo, hi) = trace.freq_range();
    println!(
        "x264 on fine-tuned {core}: mean {}, range {lo}..{hi}, ok: {}\n",
        report.core(core).mean_freq,
        report.is_ok()
    );

    let span = (hi.get() - lo.get()).max(1.0);
    for s in trace.samples() {
        let fill = (((s.freq.get() - lo.get()) / span) * 50.0).round() as usize;
        println!(
            "{:>7.1} ns  {:>8}  |{}{}|",
            s.t.get(),
            format!("{:.0} MHz", s.freq.get()),
            "#".repeat(fill),
            " ".repeat(50 - fill.min(50))
        );
    }
    println!(
        "\ndip samples (>25 MHz below peak): {}/{}",
        trace.dip_count(power_atm::units::MegaHz::new(25.0)),
        trace.samples().len()
    );
}
