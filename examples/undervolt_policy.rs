//! The off-chip voltage controller's *other* policy: instead of turning
//! reclaimed timing margin into frequency (the paper's configuration),
//! hold a frequency target and convert the excess margin of the slowest
//! core into chip-wide power savings by undervolting.
//!
//! The paper bypasses undervolting because the shared rail lets the worst
//! core cap everyone's savings — this example shows exactly that effect:
//! the controller stops shaving voltage the moment the *slowest* core's
//! 32 ms windowed frequency touches the target, leaving the faster cores'
//! margin on the table.
//!
//! ```text
//! cargo run --release --example undervolt_policy
//! ```

use power_atm::dpll::{FreqWindow, UndervoltController};
use power_atm::prelude::*;
use power_atm::telemetry::NullRecorder;
use power_atm::units::Volts;

fn main() {
    let mut sys = System::new(ChipConfig::power7_plus(42));
    let socket = ProcId::new(0);
    for core in socket.cores() {
        sys.set_mode(core, MarginMode::Atm);
    }

    // Controller contract: hold 4.45 GHz on the slowest core, shaving the
    // 1.25 V rail in 5 mV steps.
    let mut controller = UndervoltController::new(
        MegaHz::new(4450.0),
        Volts::new(1.25),
        Volts::new(1.05),
        Volts::new(0.005),
    );
    let mut window = FreqWindow::power7_plus();
    let baseline_power = {
        let report = sys.run(Nanos::new(32_000.0), &mut NullRecorder);
        report.procs[0].mean_power
    };

    println!("interval   Vdd       slowest 32ms avg   fastest core   chip power");
    for interval in 0..30 {
        sys.set_rail_voltage(socket, controller.voltage());
        let report = sys.run(Nanos::new(32_000.0), &mut NullRecorder);
        let (mut slowest, mut fastest) = (MegaHz::new(1e6), MegaHz::ZERO);
        for core in socket.cores() {
            let f = report.core(core).mean_freq;
            slowest = slowest.min(f);
            fastest = fastest.max(f);
        }
        window.push(slowest, Nanos::new(32_000.0));
        let avg = window.average().expect("pushed a sample");
        controller.update(avg);
        if interval % 5 == 0 || interval == 29 {
            println!(
                "{interval:>8}   {}  {avg:>16}   {fastest}   {}",
                controller.voltage(),
                report.procs[0].mean_power
            );
        }
    }

    let report = sys.run(Nanos::new(32_000.0), &mut NullRecorder);
    println!(
        "\nsettled at {} for the 4.45 GHz contract; chip power {} (was {} at 1.25 V)",
        controller.voltage(),
        report.procs[0].mean_power,
        baseline_power
    );
    println!(
        "note: the slowest core capped the savings — the faster cores still had margin,\n\
         which is why the paper converts margin to per-core frequency instead"
    );
}
