//! Power-capping smoke: serve the same fine-tuned chip through a
//! brownout and a price curve, run a budgeted fleet, and gate on the
//! regulator's laws.
//!
//! ```text
//! cargo run --release --example capping [seed] [epochs]
//! ```
//!
//! Three scenarios, all deterministic:
//!
//! * **brownout** — a steady cap with a reduced-floor window mid-run;
//!   the integral regulator must throttle into the window, never release
//!   while over budget, and settle (no limit cycle) after it;
//! * **price curve** — a piecewise-constant cap trace; the depth trace
//!   must follow it without the anti-windup integral escaping its clamp;
//! * **fleet budget** — a global cap split across chips each epoch at
//!   the routing barrier; serial and 4-worker runs must agree byte for
//!   byte and the per-chip picojoule rows must sum exactly to the fleet
//!   total.
//!
//! It exits non-zero if any law fails, so `just capping` is a real
//! acceptance gate, not a demo.

use power_atm::capping::{CapConfig, FleetBudget, PowerBudget, RegulatorConfig};
use power_atm::chip::{ChipConfig, System};
use power_atm::core::charact::CharactConfig;
use power_atm::core::{AtmManager, Governor};
use power_atm::fleet::{FleetConfig, FleetSim};
use power_atm::serve::{ArrivalPattern, ServeConfig, ServeReport, ServeSim, StreamSpec};
use power_atm::telemetry::NullRecorder;
use power_atm::units::Nanos;
use power_atm::workloads::by_name;

const SLO_NS: u64 = 250_000_000;

fn serve(seed: u64, epochs: u32, budget: PowerBudget, workers: usize) -> ServeReport {
    let streams = vec![
        StreamSpec::critical(
            by_name("squeezenet").expect("catalog"),
            ArrivalPattern::Poisson {
                mean_gap: 150_000_000,
            },
            SLO_NS,
        ),
        StreamSpec::background(
            by_name("x264").expect("catalog"),
            ArrivalPattern::Poisson {
                mean_gap: 40_000_000,
            },
        ),
    ];
    let sys = System::new(ChipConfig::power7_plus(seed));
    let mgr = AtmManager::deploy(sys, Governor::Default, &CharactConfig::quick());
    let cfg = ServeConfig::builder(seed)
        .epochs(epochs)
        .epoch_ns(200_000_000)
        .chip_trial(Nanos::new(1_000.0))
        .build()
        .expect("valid config");
    let mut sim = ServeSim::new(mgr, cfg, streams).expect("valid serving setup");
    sim.set_cap(CapConfig::standard(budget)).expect("valid cap");
    sim.run(workers, &mut NullRecorder)
}

fn check_capped(name: &str, seed: u64, epochs: u32, budget: PowerBudget) -> ServeReport {
    let report = serve(seed, epochs, budget.clone(), 1);
    let sharded = serve(seed, epochs, budget, 4);
    assert_eq!(
        format!("{report:#?}"),
        format!("{sharded:#?}"),
        "worker count leaked into the {name} report (seed {seed})"
    );
    let cap = report.cap.as_ref().expect("capping was on");
    assert!(
        cap.never_released_over_budget(),
        "{name}: released a rung while over budget (seed {seed})"
    );
    assert!(
        cap.integral_bounded(RegulatorConfig::standard().integral_clamp_mwe()),
        "{name}: anti-windup integral escaped its clamp (seed {seed})"
    );
    assert!(report.completed > 0, "{name}: nothing served (seed {seed})");
    assert!(
        report.energy_per_request_nj() > 0,
        "{name}: the energy account is empty (seed {seed})"
    );
    report
}

fn check_fleet(seed: u64) {
    let cfg = FleetConfig::builder(seed)
        .chips(4)
        .epochs(3)
        .budget(FleetBudget::steady(200_000))
        .build()
        .expect("valid budgeted fleet");
    let serial = FleetSim::new(cfg.clone()).expect("valid fleet").run(1);
    let sharded = FleetSim::new(cfg).expect("valid fleet").run(4);
    assert_eq!(
        format!("{serial:#?}"),
        format!("{sharded:#?}"),
        "worker count leaked into the budgeted fleet report (seed {seed})"
    );
    assert!(
        serial.energy_conserved(),
        "per-chip picojoules do not sum to the fleet total (seed {seed})"
    );
    assert_eq!(
        serial.caps.len(),
        serial.rows.len(),
        "a budgeted fleet must carry one cap account per chip (seed {seed})"
    );
    for cap in &serial.caps {
        assert!(
            cap.never_released_over_budget(),
            "a fleet chip released while over budget (seed {seed})"
        );
    }
    println!(
        "  fleet: {} chips under a 200 W global cap, {} pJ total, {} nJ/request ✓",
        serial.chips,
        serial.energy.total_pj,
        serial.energy_per_request_nj()
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let first: Option<u64> = args.next().map(|a| a.parse().expect("seed"));
    let epochs: u32 = args.next().map_or(12, |a| a.parse().expect("epochs"));
    let seeds: Vec<u64> = first.map_or_else(|| vec![42, 7], |s| vec![s]);

    for seed in seeds {
        println!("seed {seed}:");
        // A cap that never binds measures the chip's power trace without
        // throttling; the scenarios below cap against that trace's mean.
        let baseline = serve(seed, epochs, PowerBudget::unlimited(), 1);
        let trace = &baseline.cap.as_ref().expect("capping was on").power_mw;
        let base_mw = trace.iter().sum::<u64>() / trace.len().max(1) as u64;
        assert_eq!(
            baseline.cap.as_ref().expect("capping was on").final_depth,
            0,
            "an unlimited cap must never bind (seed {seed})"
        );

        let brownout = check_capped(
            "brownout",
            seed,
            epochs,
            PowerBudget::brownout(base_mw * 2, base_mw * 7 / 10, epochs / 4, epochs / 2),
        );
        let cap = brownout.cap.as_ref().expect("capping was on");
        assert!(
            cap.throttle_steps > 0,
            "a 30 % brownout never engaged the regulator (seed {seed})"
        );
        assert!(
            cap.converged(3),
            "depth still moving at the end of the brownout run (seed {seed}): {:?}",
            cap.depth
        );
        println!(
            "  brownout: {} throttle / {} release rungs, settled at depth {} ✓",
            cap.throttle_steps, cap.release_steps, cap.final_depth
        );

        let curve = check_capped(
            "price curve",
            seed,
            epochs,
            PowerBudget::price_curve(vec![
                (0, base_mw * 2),
                (epochs / 3, base_mw * 3 / 4),
                (2 * epochs / 3, base_mw * 2),
            ]),
        );
        let cap = curve.cap.as_ref().expect("capping was on");
        println!(
            "  price curve: depth trace {:?}, {} mJ/request ✓",
            cap.depth,
            curve.energy_per_request_nj() / 1_000_000
        );

        check_fleet(seed);
    }
    println!("regulator laws hold, serial ≡ 4-worker, energy books balance ✓");
}
