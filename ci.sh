#!/bin/sh
# The repo's CI gate: formatting, release build (examples included),
# tests, warning-free workspace-wide clippy over every target, and
# warning-free rustdoc.
set -eux

cargo fmt --check
cargo build --release
cargo build --release --examples
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
