#!/bin/sh
# The repo's CI gate: formatting, release build (examples included),
# tests, and warning-free workspace-wide clippy over every target.
set -eux

cargo fmt --check
cargo build --release
cargo build --release --examples
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
