#!/bin/sh
# The repo's CI gate: release build, tests, and warning-free clippy.
set -eux

cargo build --release
cargo test -q
cargo clippy -- -D warnings
