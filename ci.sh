#!/bin/sh
# The repo's CI gate: formatting, release build (examples and benches
# included), tests, a bench smoke pass, warning-free workspace-wide
# clippy over every target, and warning-free rustdoc.
set -eux

cargo fmt --check
cargo build --release
cargo build --release --examples
cargo build --release --benches
cargo test -q
# Smoke the perf harness end to end (tiny spans, no JSON update).
cargo bench -p atm-bench --bench simperf -- --test
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
# Chaos sweep: the three standard fault plans under three seeds
# (mirrors `just chaos`).
for seed in 42 7 1234; do
    cargo run --release --example fault_campaign "$seed" 3 4
done
# Fleet smoke: small sharded fleets under two seeds, serial vs
# 4-worker runs byte-compared (mirrors `just fleet`).
for seed in 42 7; do
    cargo run --release --example fleet "$seed"
done
# Adaptation smoke: drifting lots with the recharacterization loop
# closed — convergence, SLO safety and byte determinism asserted by the
# example itself (mirrors `just adapt`).
for seed in 42 7; do
    cargo run --release --example adapt "$seed"
done
# Capping smoke: brownout, price-curve and budgeted-fleet scenarios
# under two seeds — regulator laws, energy conservation and serial ≡
# 4-worker byte identity asserted by the example itself (mirrors
# `just capping`).
for seed in 42 7; do
    cargo run --release --example capping "$seed"
done
# Recovery smoke: a chip hard-failed mid-run, both seeds driven inside
# the example — exactly-once accounting with retries, SLO
# re-convergence after failover, serial ≡ 4-worker byte identity
# (mirrors `just recover`).
cargo run --release --example recovery
