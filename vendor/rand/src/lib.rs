//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses:
//!
//! * [`rngs::StdRng`] — the ChaCha12 generator `rand` 0.8 documents as its
//!   standard RNG, with the same PCG32-based [`SeedableRng::seed_from_u64`]
//!   seed expansion as `rand_core` 0.6, so seeded streams are reproducible
//!   and well distributed;
//! * [`Rng::gen_range`] over half-open and inclusive `f64`/integer ranges,
//!   following the `rand` 0.8 uniform-float construction (52 random
//!   mantissa bits mapped through `[1, 2)`);
//! * [`Rng::gen_bool`] via the fixed-point Bernoulli comparison.
//!
//! Only determinism and statistical quality are guaranteed — this is a
//! simulator dependency, not a cryptographic one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 stream `rand_core`
    /// 0.6 uses, then delegates to [`SeedableRng::from_seed`].
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // Fixed-point comparison against p·2⁶⁴ (rand's Bernoulli).
        let p_int = (p * (2.0f64).powi(64)) as u64;
        self.next_u64() < p_int
    }

    /// Samples a value from the standard distribution of `T` (uniform over
    /// the value range for integers, `[0, 1)` at 53-bit precision for
    /// floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard (`rng.gen()`) distribution.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53-bit precision multiply, as rand's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps 52 random bits into `[1, 2)` (the rand 0.8 uniform-float core).
#[inline]
fn value1_2<R: RngCore>(rng: &mut R) -> f64 {
    let fraction = rng.next_u64() >> 12;
    f64::from_bits(fraction | (1023u64 << 52))
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let scale = self.end - self.start;
        loop {
            let value0_1 = value1_2(rng) - 1.0;
            let res = value0_1 * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "empty inclusive f64 range");
        // Largest value0_1 the generator can produce.
        let max_rand = f64::from_bits((u64::MAX >> 12) | (1023u64 << 52)) - 1.0;
        let scale = (high - low) / max_rand;
        loop {
            let value0_1 = value1_2(rng) - 1.0;
            let res = value0_1 * scale + low;
            if res <= high {
                return res;
            }
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "empty inclusive integer range");
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

/// The provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: ChaCha with 12 rounds, matching the
    /// algorithm `rand` 0.8 documents for its `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        /// ChaCha input block: constants, key, 64-bit counter, 64-bit
        /// stream id.
        state: [u32; 16],
        /// Current output block.
        block: [u32; 16],
        /// Next word to serve from `block`; 16 forces a refill.
        index: usize,
    }

    impl StdRng {
        fn refill(&mut self) {
            let mut w = self.state;
            for _ in 0..6 {
                // Column round.
                quarter(&mut w, 0, 4, 8, 12);
                quarter(&mut w, 1, 5, 9, 13);
                quarter(&mut w, 2, 6, 10, 14);
                quarter(&mut w, 3, 7, 11, 15);
                // Diagonal round.
                quarter(&mut w, 0, 5, 10, 15);
                quarter(&mut w, 1, 6, 11, 12);
                quarter(&mut w, 2, 7, 8, 13);
                quarter(&mut w, 3, 4, 9, 14);
            }
            for (o, s) in w.iter_mut().zip(self.state.iter()) {
                *o = o.wrapping_add(*s);
            }
            self.block = w;
            self.index = 0;
            // 64-bit block counter in words 12–13.
            let (lo, carry) = self.state[12].overflowing_add(1);
            self.state[12] = lo;
            if carry {
                self.state[13] = self.state[13].wrapping_add(1);
            }
        }
    }

    #[cfg(test)]
    pub(crate) fn test_quarter(w: &mut [u32; 16]) {
        quarter(w, 0, 1, 2, 3);
    }

    fn quarter(w: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        w[a] = w[a].wrapping_add(w[b]);
        w[d] = (w[d] ^ w[a]).rotate_left(16);
        w[c] = w[c].wrapping_add(w[d]);
        w[b] = (w[b] ^ w[c]).rotate_left(12);
        w[a] = w[a].wrapping_add(w[b]);
        w[d] = (w[d] ^ w[a]).rotate_left(8);
        w[c] = w[c].wrapping_add(w[d]);
        w[b] = (w[b] ^ w[c]).rotate_left(7);
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = [0u32; 16];
            // "expand 32-byte k"
            state[0] = 0x6170_7865;
            state[1] = 0x3320_646e;
            state[2] = 0x7962_2d32;
            state[3] = 0x6b20_6574;
            for (i, chunk) in seed.chunks_exact(4).enumerate() {
                state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            // Words 12..16 (counter and stream) start at zero.
            StdRng {
                state,
                block: [0; 16],
                index: 16,
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let word = self.block[self.index];
            self.index += 1;
            word
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let lo = u64::from(self.next_u32());
            let hi = u64::from(self.next_u32());
            (hi << 32) | lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32)
                .map(|_| rng.gen_range(0.0..1.0))
                .collect::<Vec<f64>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&x));
            let y = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&y));
            let n = rng.gen_range(3u64..17);
            assert!((3..17).contains(&n));
            let m = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&m));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_rate_tracks_p() {
        let mut rng = StdRng::seed_from_u64(13);
        for &p in &[0.1, 0.5, 0.9] {
            let n = 50_000;
            let hits = (0..n).filter(|_| rng.gen_bool(p)).count();
            let rate = hits as f64 / f64::from(n);
            assert!((rate - p).abs() < 0.02, "p={p} rate={rate}");
        }
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn chacha_quarter_round_vector() {
        // RFC 7539 §2.1.1 test vector for one quarter round.
        let mut w = [0u32; 16];
        w[0] = 0x1111_1111;
        w[1] = 0x0102_0304;
        w[2] = 0x9b8d_6f43;
        w[3] = 0x0123_4567;
        super::rngs::test_quarter(&mut w);
        assert_eq!(w[0], 0xea2a_92f4);
        assert_eq!(w[1], 0xcb1c_f8ce);
        assert_eq!(w[2], 0x4581_472e);
        assert_eq!(w[3], 0x5881_c4bb);
    }
}
