//! Offline vendored criterion-compatible micro-benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API this workspace uses
//! (`Criterion`, `Bencher::iter`, benchmark groups with throughput and
//! parameterized inputs) with real wall-clock timing via
//! [`std::time::Instant`]. Every finished benchmark appends one JSON line
//! to `target/bench-trajectory.json` so successive runs accumulate a
//! result trajectory, and prints a human-readable summary line.
//!
//! Not implemented (not needed here): statistical outlier analysis,
//! HTML reports, comparison against saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One timed sample: `iters` iterations took `total` wall-clock time.
#[derive(Debug, Clone, Copy)]
struct Sample {
    iters: u64,
    total: Duration,
}

impl Sample {
    fn ns_per_iter(&self) -> f64 {
        self.total.as_secs_f64() * 1e9 / self.iters.max(1) as f64
    }
}

/// Timing driver handed to the benchmark closure.
pub struct Bencher<'a> {
    cfg: &'a Config,
    samples: Vec<Sample>,
}

impl Bencher<'_> {
    /// Times `routine`, collecting `sample_size` samples after a warm-up
    /// period. Return values are passed through [`black_box`] so the
    /// optimizer cannot discard the computation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (>= 1 call) and
        // estimate the per-iteration cost from it.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.cfg.warm_up_time {
                break;
            }
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample so the whole measurement fits the budget.
        let samples = self.cfg.sample_size.max(1) as u64;
        let per_sample = self.cfg.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = ((per_sample / est_per_iter.max(1e-12)) as u64).max(1);

        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(Sample {
                iters: iters_per_sample,
                total: start.elapsed(),
            });
        }
    }
}

/// Summary statistics for one finished benchmark.
#[derive(Debug, Clone)]
struct Estimate {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_total: u64,
    throughput: Option<Throughput>,
}

impl Estimate {
    fn from_samples(name: String, samples: &[Sample], throughput: Option<Throughput>) -> Self {
        let per: Vec<f64> = samples.iter().map(Sample::ns_per_iter).collect();
        let n = per.len().max(1) as f64;
        Self {
            name,
            mean_ns: per.iter().sum::<f64>() / n,
            min_ns: per.iter().copied().fold(f64::INFINITY, f64::min),
            max_ns: per.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            samples: per.len(),
            iters_total: samples.iter().map(|s| s.iters).sum(),
            throughput,
        }
    }

    fn json_line(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"bench\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters\":{}",
            escape_json(&self.name),
            self.mean_ns,
            self.min_ns,
            self.max_ns,
            self.samples,
            self.iters_total
        );
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / (self.mean_ns / 1e9);
                let _ = write!(s, ",\"elements\":{n},\"elements_per_sec\":{per_sec:.1}");
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / (self.mean_ns / 1e9);
                let _ = write!(s, ",\"bytes\":{n},\"bytes_per_sec\":{per_sec:.1}");
            }
            None => {}
        }
        s.push('}');
        s
    }

    fn print_human(&self) {
        eprintln!(
            "{:<48} time: [{} {} {}]",
            self.name,
            fmt_ns(self.min_ns),
            fmt_ns(self.mean_ns),
            fmt_ns(self.max_ns)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Measured quantity a benchmark processes per iteration; reported as a
/// rate in the JSON trajectory.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements (e.g. simulated ticks) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// The benchmark manager: collects estimates, writes the trajectory file.
#[derive(Default)]
pub struct Criterion {
    cfg: Config,
    results: Vec<Estimate>,
}

impl Criterion {
    /// Number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    /// Warm-up budget before measurement starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Accepts and ignores harness CLI arguments (`cargo bench` passes
    /// `--bench`); kept for API compatibility.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            cfg: &self.cfg,
            samples: Vec::new(),
        };
        f(&mut b);
        let est = Estimate::from_samples(name.to_string(), &b.samples, None);
        est.print_human();
        self.results.push(est);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<'a>(&'a mut self, name: &str) -> BenchmarkGroup<'a> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Flushes all collected estimates to `target/bench-trajectory.json`
    /// (one JSON object per line, appended across runs).
    pub fn final_summary(&mut self) {
        let path = trajectory_path();
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(&path) {
            for est in &self.results {
                let _ = writeln!(f, "{}", est.json_line());
            }
        }
        eprintln!(
            "wrote {} benchmark result(s) to {}",
            self.results.len(),
            path.display()
        );
        self.results.clear();
    }
}

fn trajectory_path() -> PathBuf {
    // CARGO_TARGET_DIR if set, else the enclosing `target/` of the bench
    // executable (cargo runs benches with cwd = the *package* root, so a
    // relative `target` would land in the wrong directory for workspace
    // members); fall back to ./target.
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("bench-trajectory.json");
    }
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors() {
            if dir.file_name() == Some(std::ffi::OsStr::new("target")) {
                return dir.join("bench-trajectory.json");
            }
        }
    }
    PathBuf::from("target").join("bench-trajectory.json")
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput reported for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            cfg: &self.parent.cfg,
            samples: Vec::new(),
        };
        f(&mut b);
        let est = Estimate::from_samples(full, &b.samples, self.throughput);
        est.print_human();
        self.parent.results.push(est);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, D: std::fmt::Display, F>(
        &mut self,
        id: D,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            cfg: &self.parent.cfg,
            samples: Vec::new(),
        };
        f(&mut b, input);
        let est = Estimate::from_samples(full, &b.samples, self.throughput);
        est.print_human();
        self.parent.results.push(est);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = fast();
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].samples, 3);
        assert!(c.results[0].mean_ns > 0.0);
        assert!(c.results[0].min_ns <= c.results[0].mean_ns);
        assert!(c.results[0].mean_ns <= c.results[0].max_ns);
    }

    #[test]
    fn group_names_and_throughput() {
        let mut c = fast();
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Elements(100));
            g.bench_with_input(BenchmarkId::new("f", 4), &4u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(c.results[0].name, "grp/f/4");
        let line = c.results[0].json_line();
        assert!(line.contains("\"elements\":100"), "{line}");
        assert!(line.ends_with('}') && line.starts_with('{'));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }
}
