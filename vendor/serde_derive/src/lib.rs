//! No-op derive macros for the vendored serde shim.
//!
//! The shim's `Serialize`/`Deserialize` traits are blanket-implemented, so
//! the derives have nothing to emit; they exist so `#[derive(Serialize,
//! Deserialize)]` sites compile unchanged. The `serde` helper attribute is
//! accepted (and ignored) for forward compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; emits nothing (blanket impl exists).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; emits nothing (blanket impl exists).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
