//! Offline vendored `serde` shim.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! markers and trait bounds — nothing is actually serialized in-tree (the
//! CSV/Display renderers are hand-written). With no crates.io access, this
//! shim supplies the two trait names as blanket-implemented markers and
//! re-exports no-op derive macros, so every `derive` site and
//! `T: Serialize + for<'de> Deserialize<'de>` bound compiles unchanged.
//!
//! If real serialization is ever needed, drop in the real `serde` and the
//! code keeps working — the shim is API-compatible at every use site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable data structures (blanket-implemented).
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable data structures (blanket-implemented).
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker for owned-deserializable data (blanket-implemented).
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize, Debug, PartialEq)]
    struct Sample<T> {
        x: T,
    }

    fn assert_bounds<T: super::Serialize + for<'de> super::Deserialize<'de>>() {}

    #[test]
    fn derives_and_bounds_compile() {
        assert_bounds::<Sample<f64>>();
        assert_bounds::<Vec<String>>();
        let s = Sample { x: 1.0 };
        assert_eq!(s, Sample { x: 1.0 });
    }
}
