//! Offline vendored mini-proptest.
//!
//! A deterministic property-testing harness exposing the subset of the
//! `proptest` 1.x surface this workspace uses:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, `#[test]`
//!   attributes and `arg in strategy` bindings;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * range strategies over the primitive numeric types, tuples of
//!   strategies, [`Just`], and [`collection::vec`];
//! * [`ProptestConfig::with_cases`].
//!
//! Design differences from upstream, chosen for an offline simulator
//! workspace: cases are generated from a fixed default seed (override with
//! `PROPTEST_SEED`) so CI runs are reproducible, and there is **no
//! shrinking** — on failure the harness panics with the case number, the
//! seed, and the generated inputs, which is enough to reproduce and debug
//! deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Maximum rejected (assumed-away) cases tolerated before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            // Upstream defaults to 256; simulation-heavy properties in
            // this workspace override per block, and 64 keeps the cheap
            // ones meaningful without dominating `cargo test`.
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`] — not a failure.
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection with the given message.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type property bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG cases are generated from (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` at 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "empty inclusive f64 range strategy");
        let max_unit = (u64::MAX >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + (high - low) * (rng.unit_f64() / max_unit)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "empty inclusive integer range strategy");
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Ranges usable as collection sizes.
    pub trait SizeRange {
        /// Samples a size.
        fn sample_size(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_size(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_size(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_size(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange>
    where
        S::Value: Debug,
    {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample_size(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Generates any value of a type with a canonical full-range strategy.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical strategy (tiny subset of upstream Arbitrary).
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for [`Arbitrary`] primitives.
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;

            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

/// Drives the cases of one property.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
    name: &'static str,
    rejects: u32,
}

impl TestRunner {
    /// Creates a runner for the property called `name`.
    #[must_use]
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00Du64);
        TestRunner {
            config,
            seed,
            name,
            rejects: 0,
        }
    }

    /// How many cases to run.
    #[must_use]
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG stream for case `case` (independent per property and case).
    #[must_use]
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(self.seed ^ h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Records the outcome of one case; panics on failure with enough
    /// context to reproduce (property name, case number, seed, inputs).
    pub fn check(&mut self, case: u32, outcome: TestCaseResult, inputs: &str) {
        match outcome {
            Ok(()) => {}
            Err(TestCaseError::Reject(why)) => {
                self.rejects += 1;
                assert!(
                    self.rejects <= self.config.max_global_rejects,
                    "property {}: too many prop_assume rejections (last: {why})",
                    self.name
                );
            }
            Err(TestCaseError::Fail(msg)) => panic!(
                "property {} failed at case {case}/{} (PROPTEST_SEED={}):\n  inputs: {}\n  {msg}",
                self.name,
                self.config.cases,
                self.seed,
                inputs.trim_end_matches([' ', ',']),
            ),
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Namespaced strategy modules (upstream's `prelude::prop`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: `proptest! { #[test] fn p(x in 0u64..10) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: $crate::TestCaseResult = (move || {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                runner.check(case, outcome, &inputs);
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case unless `cond` holds (counted, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and config attributes both parse.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in -1.5f64..2.5, k in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn vectors_and_tuples(
            v in prop::collection::vec(0.0f64..1.0, 0..32),
            pair in (0u8..2, 0.0f64..0.05),
        ) {
            prop_assert!(v.len() < 32);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert!(pair.0 < 2);
            prop_assert!((0.0..0.05).contains(&pair.1));
        }

        #[test]
        fn assume_skips(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in 0u64..1000) {
            prop_assert_ne!(seed, 1000);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let runner = super::TestRunner::new(ProptestConfig::with_cases(4), "p");
        let a: Vec<u64> = (0..4).map(|c| runner.rng_for_case(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| runner.rng_for_case(c).next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_reports_inputs() {
        // No #[test] on the generated fn: it is deliberately local (it
        // always fails) and invoked by hand below.
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
